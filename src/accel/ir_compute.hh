/**
 * @file
 * Cycle-accurate functional model of one IR unit's datapath: the
 * Hamming Distance Calculator stage (paper Figure 5, and Figure 8
 * for the data-parallel variant) followed by the Consensus
 * Selector stage.
 *
 * The model operates on the marshalled byte image of a target --
 * exactly the bytes the MemReaders stream into the unit's block-RAM
 * input buffers -- and produces both the architectural outputs
 * (realign flags + new positions, plus the picked consensus in the
 * RoCC response) and the cycle cost of the computation.
 *
 * Timing model:
 *  - The calculator compares `width` base bytes and accumulates
 *    `width` quality bytes per cycle (width = 1 scalar, 32 in the
 *    deployed design: one 32-byte block-RAM row per cycle, with the
 *    two-row consensus pipeline hiding unaligned offsets).
 *  - With pruning enabled, an offset is abandoned at the end of the
 *    first chunk whose running sum reaches the current minimum --
 *    prune granularity is therefore `width` bases, matching the
 *    hardware's per-cycle compare of the running minimum register.
 *  - Each offset costs one extra setup cycle (read pointer reset);
 *    each (consensus, read) pair costs two cycles to hand the
 *    minimum to the selector.
 *  - The selector's buffers have a single read/write port, so
 *    scoring costs one cycle per read per non-reference consensus,
 *    plus a final one-cycle-per-read realignment pass.
 *
 * Functional results are bit-identical to the software kernel for
 * every width and pruning setting (asserted by property tests).
 */

#ifndef IRACC_ACCEL_IR_COMPUTE_HH
#define IRACC_ACCEL_IR_COMPUTE_HH

#include <cstdint>

#include "realign/marshal.hh"
#include "realign/whd.hh"
#include "sim/event_queue.hh"

namespace iracc {

/** Result of running one target through an IR unit's datapath. */
struct IrComputeResult
{
    /** Output buffers #1/#2 content. */
    AccelTargetOutput output;

    /** Picked consensus (returned in the RoCC response). */
    uint32_t bestConsensus = 0;

    /** Hamming-distance-calculator stage cycles. */
    Cycle hdcCycles = 0;

    /** Consensus-selector stage cycles. */
    Cycle selectorCycles = 0;

    /** Work counters (for ablation benches). */
    WhdStats whd;

    Cycle
    totalCycles() const
    {
        return hdcCycles + selectorCycles;
    }
};

/**
 * Run one marshalled target through the two-stage datapath.
 *
 * @param target marshalled target (input buffer images)
 * @param width  data-parallel width in bases/cycle (>= 1)
 * @param prune  enable computation pruning
 */
IrComputeResult irCompute(const MarshalledTarget &target,
                          uint32_t width, bool prune);

} // namespace iracc

#endif // IRACC_ACCEL_IR_COMPUTE_HH
