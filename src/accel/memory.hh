/**
 * @file
 * Shared-interconnect memory models for the accelerator system
 * (paper Figure 6): the FPGA-attached DDR4 channels behind the AXI
 * crossbar and the 32:1 / 5:1 arbiter tree, and the host-to-FPGA
 * PCIe DMA engine.
 *
 * Each shared resource is modeled as a bandwidth-limited channel
 * with in-order service: a transfer occupies the channel for
 * ceil(bytes / channel_bytes_per_cycle) cycles starting when the
 * channel frees up, and completes after an additional fixed
 * latency.  A per-requester link width (the unit's TileLink
 * interface) caps the effective rate of any single transfer.
 * Queueing behind earlier transfers is exactly what the arbiters
 * introduce, so contention between the 32 units emerges naturally.
 */

#ifndef IRACC_ACCEL_MEMORY_HH
#define IRACC_ACCEL_MEMORY_HH

#include <cstdint>
#include <string>

#include "sim/clock.hh"
#include "sim/event_queue.hh"
#include "sim/perf_monitor.hh"

namespace iracc {

class FaultInjector;

/** A bandwidth-limited, in-order shared channel. */
class SharedChannel
{
  public:
    /**
     * @param name      for diagnostics
     * @param bpc       channel bandwidth in bytes/cycle
     * @param latency   fixed completion latency in cycles
     */
    SharedChannel(std::string name, uint64_t bpc, uint64_t latency);

    /**
     * Reserve the channel for a transfer issued at cycle @p now.
     *
     * @param now      issue cycle
     * @param bytes    payload size
     * @param link_bpc requester link width cap (0 = uncapped)
     * @return completion cycle of the transfer
     */
    Cycle transfer(Cycle now, uint64_t bytes, uint64_t link_bpc = 0);

    /** Cycle at which the channel next becomes free. */
    Cycle freeAt() const { return busyUntil; }

    /** Total payload bytes moved. */
    uint64_t bytesMoved() const { return totalBytes; }

    /** Cycles the channel spent occupied. */
    Cycle busyCycles() const { return totalBusy; }

    /** Transfers serviced. */
    uint64_t transfers() const { return numTransfers; }

    const std::string &name() const { return channelName; }

    /**
     * Attach a performance monitor: every subsequent transfer is
     * recorded as channel @p chan_idx (grant/conflict/wait/
     * occupancy/bytes/latency, plus a trace span when tracing).
     */
    void
    attachPerf(PerfMonitor *monitor, size_t chan_idx)
    {
        perf = monitor;
        perfChan = chan_idx;
    }

    /**
     * Attach a fault injector (null = fault-free): a ChannelStall
     * spec matching this channel's name extends both the occupancy
     * and the completion of the transfer it fires on, modeling an
     * arbiter livelock or a DRAM refresh storm.
     */
    void attachFaults(FaultInjector *injector) { faults = injector; }

  private:
    std::string channelName;
    uint64_t bytesPerCycle;
    uint64_t latency;
    Cycle busyUntil = 0;
    uint64_t totalBytes = 0;
    Cycle totalBusy = 0;
    uint64_t numTransfers = 0;
    PerfMonitor *perf = nullptr;
    size_t perfChan = 0;
    FaultInjector *faults = nullptr;
};

} // namespace iracc

#endif // IRACC_ACCEL_MEMORY_HH
