/**
 * @file
 * The shared accelerator-fleet resource layer.
 *
 * The paper's deployment argument (Section VI) is about saturating
 * provisioned cloud FPGA capacity, so the engine models capacity as
 * a first-class resource: a CardFleet describes N identical F1
 * cards (each an AccelConfig's worth of IR units) and hands out
 * FleetLeases.  A lease materializes one fresh FpgaSystem per card
 * -- a private virtual timeline, so concurrent contigs of a
 * parallel job never share simulator state and modeled timing stays
 * a pure function of (targets, fleet configuration) -- while the
 * fleet itself persists across leases and accumulates the per-card
 * accounting (`fleet.*` metrics, see docs/OBSERVABILITY.md).
 *
 * Work is dispatched in shards (runs of consecutive targets); shard
 * i's home card is i % cards.  With stealing enabled the host
 * scheduler (host/scheduler.hh, scheduleFleetTargets) instead
 * places each shard on the least-loaded card, counting displaced
 * shards as steals.  Datapath results are pure functions of the
 * marshalled bytes, so any placement produces bit-identical
 * decisions; only the modeled makespan changes.
 *
 * Per-card fault attachment: FleetConfig::cardPlans[k] is card k's
 * FaultPlan (missing entries = fault-free).  The hardened executor
 * (host/hardened_executor.hh) builds one FaultInjector per card per
 * lease, so occurrence counters restart per contig exactly like the
 * single-card path.
 */

#ifndef IRACC_ACCEL_CARD_FLEET_HH
#define IRACC_ACCEL_CARD_FLEET_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "accel/fpga_system.hh"
#include "accel/params.hh"
#include "fault/fault.hh"

namespace iracc {

/** Configuration of a multi-card accelerator fleet. */
struct FleetConfig
{
    /** Per-card accelerator configuration (all cards identical). */
    AccelConfig card;

    /** Number of cards provisioned. */
    uint32_t cards = 1;

    /** Cross-card work stealing: place each shard on the
     *  least-loaded card instead of its round-robin home. */
    bool stealing = true;

    /** Targets per work shard (the dispatch granularity). */
    uint32_t shardTargets = 8;

    /**
     * Per-card fault schedules, indexed by card id; cards beyond
     * the vector's size are fault-free.  Only the hardened
     * execution path attaches them.
     */
    std::vector<FaultPlan> cardPlans;

    /** One-card fleet over @p cfg (the legacy single-card shape). */
    static FleetConfig
    singleCard(AccelConfig cfg)
    {
        FleetConfig f;
        f.card = cfg;
        return f;
    }
};

/** Per-card accounting of one fleet execution (one lease). */
struct FleetCardExecStats
{
    uint32_t card = 0;

    /** Final cycle of the card's virtual timeline. */
    Cycle busyCycles = 0;

    /** Targets resolved on this card. */
    uint64_t targets = 0;

    /** Shards dispatched to this card (its queue depth). */
    uint64_t shards = 0;

    /** Shards run here whose round-robin home was another card. */
    uint64_t steals = 0;

    /** Hardened only: targets migrated here off a wedged card. */
    uint64_t migrations = 0;
};

/** Fleet-level accounting of one (or many merged) executions. */
struct FleetExecStats
{
    /** Per-card rows, ascending card id. */
    std::vector<FleetCardExecStats> cards;

    /** True when the run went through the fleet scheduler. */
    bool enabled() const { return !cards.empty(); }

    uint64_t
    steals() const
    {
        uint64_t n = 0;
        for (const FleetCardExecStats &c : cards)
            n += c.steals;
        return n;
    }

    uint64_t
    migrations() const
    {
        uint64_t n = 0;
        for (const FleetCardExecStats &c : cards)
            n += c.migrations;
        return n;
    }

    uint64_t
    shards() const
    {
        uint64_t n = 0;
        for (const FleetCardExecStats &c : cards)
            n += c.shards;
        return n;
    }

    Cycle
    busyCycles() const
    {
        Cycle n = 0;
        for (const FleetCardExecStats &c : cards)
            n += c.busyCycles;
        return n;
    }

    /** Row for card @p id, created on demand (kept sorted). */
    FleetCardExecStats &cardRow(uint32_t id);

    /** Accumulate @p other's rows into this (matched by card id). */
    void merge(const FleetExecStats &other);
};

class CardFleet;

/**
 * One borrowed use of the whole fleet: fresh per-card FpgaSystem
 * instances (private virtual timelines) plus the per-card fault
 * plans.  Fill `stats` during execution; the destructor posts it
 * back to the owning fleet's cumulative accounting.  Movable,
 * non-copyable.
 */
class FleetLease
{
  public:
    FleetLease(FleetLease &&other) noexcept
        : stats(std::move(other.stats)), owner(other.owner),
          numCards(other.numCards),
          systems(std::move(other.systems))
    {
        other.owner = nullptr;
    }
    FleetLease &operator=(FleetLease &&) = delete;
    FleetLease(const FleetLease &) = delete;
    FleetLease &operator=(const FleetLease &) = delete;
    ~FleetLease();

    uint32_t cards() const { return numCards; }
    FpgaSystem &card(uint32_t k) { return *systems[k]; }
    const FleetConfig &config() const;

    /** Card @p k's fault schedule (empty plan when none). */
    const FaultPlan &cardPlan(uint32_t k) const;

    /** Per-card accounting of this use, posted home on release. */
    FleetExecStats stats;

  private:
    friend class CardFleet;
    explicit FleetLease(const CardFleet *fleet);

    const CardFleet *owner;
    uint32_t numCards;
    std::vector<std::unique_ptr<FpgaSystem>> systems;
};

/**
 * The shared fleet resource: card roster + cumulative accounting.
 * Thread-safe -- concurrent contig workers lease and release from
 * worker threads; the counters are folded under a mutex.
 */
class CardFleet
{
  public:
    explicit CardFleet(FleetConfig config);

    const FleetConfig &config() const { return cfg; }
    uint32_t numCards() const { return cfg.cards; }

    /** Card @p k's fault schedule (empty plan when none). */
    const FaultPlan &cardPlan(uint32_t k) const;

    /** Borrow the fleet: fresh per-card simulators. */
    FleetLease lease() const;

    /** Cumulative per-card accounting across released leases. */
    FleetExecStats totals() const;

    /** Leases issued so far. */
    uint64_t leasesIssued() const;

  private:
    friend class FleetLease;
    void release(const FleetExecStats &stats) const;

    FleetConfig cfg;
    FaultPlan emptyPlan;

    mutable std::mutex mu;
    mutable FleetExecStats cumulative;
    mutable uint64_t leases = 0;
};

} // namespace iracc

#endif // IRACC_ACCEL_CARD_FLEET_HH
