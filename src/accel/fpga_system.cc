#include "accel/fpga_system.hh"

#include "fault/fault.hh"
#include "util/logging.hh"

namespace iracc {

FpgaSystem::FpgaSystem(AccelConfig config)
    : cfg(config), clock(config.clockMhz),
      dma("pcie-dma", config.dmaBytesPerCycle, config.dmaLatency),
      axilite("axilite-hub", config.axiliteBytesPerCycle, 0)
{
    fatal_if(cfg.numUnits == 0 || cfg.numUnits > 32,
             "unit count %u outside 1..32 (5-bit RoCC unit id)",
             cfg.numUnits);
    fatal_if(cfg.ddrChannels == 0 || cfg.ddrChannels > 4,
             "F1 exposes 1..4 DDR channels, got %u",
             cfg.ddrChannels);

    for (uint32_t c = 0; c < cfg.ddrChannels; ++c) {
        ddr.push_back(std::make_unique<SharedChannel>(
            "ddr" + std::to_string(c), cfg.ddrBytesPerCycle,
            cfg.ddrLatency));
    }
    for (uint32_t u = 0; u < cfg.numUnits; ++u) {
        units.push_back(std::make_unique<IrUnitModel>(
            u, &cfg, &eq, ddr[u % cfg.ddrChannels].get(), &mem));
    }

    if (cfg.perfCounters || cfg.perfTrace) {
        perfMon = std::make_unique<PerfMonitor>(
            PerfOptions{cfg.perfTrace});
        size_t dma_idx = perfMon->registerChannel(dma.name());
        dma.attachPerf(perfMon.get(), dma_idx);
        size_t axi_idx = perfMon->registerChannel(axilite.name());
        axilite.attachPerf(perfMon.get(), axi_idx);
        for (auto &ch : ddr) {
            size_t idx = perfMon->registerChannel(ch->name());
            ch->attachPerf(perfMon.get(), idx);
        }
        // Block-RAM buffer classes, in IrBuffer order (the paper's
        // Figure 6 "Structure Sizes").
        size_t buffer_base = perfMon->registerBuffer(
            "consensus-bases",
            static_cast<uint64_t>(kMaxConsensuses) *
                kMaxConsensusLen);
        perfMon->registerBuffer(
            "read-bases",
            static_cast<uint64_t>(kMaxReads) * kMaxReadLen);
        perfMon->registerBuffer(
            "read-quals",
            static_cast<uint64_t>(kMaxReads) * kMaxReadLen);
        perfMon->registerBuffer("out-flags", kMaxReads);
        perfMon->registerBuffer(
            "out-positions", static_cast<uint64_t>(kMaxReads) * 4);
        for (auto &u : units) {
            perfMon->registerUnit(u->id());
            u->attachPerf(perfMon.get(), buffer_base);
        }
        perfMon->registerTrack(kTraceTidScheduler, "scheduler");
    }
}

void
FpgaSystem::attachFaults(FaultInjector *injector)
{
    faults = injector;
    mem.attachFaults(injector);
    dma.attachFaults(injector);
    axilite.attachFaults(injector);
    for (auto &ch : ddr)
        ch->attachFaults(injector);
    for (auto &u : units)
        u->attachFaults(injector);
}

bool
FpgaSystem::unitIdle(uint32_t unit) const
{
    panic_if(unit >= units.size(), "unit %u out of range", unit);
    return !units[unit]->busy();
}

void
FpgaSystem::dmaToDevice(uint64_t addr, const void *src,
                        uint64_t bytes,
                        std::function<void()> on_done)
{
    // DmaDrop fault: the burst is issued but never completes -- no
    // bytes land and no completion fires, so the destination reads
    // as whatever was there before (zeroes for fresh buffers).
    if (faults && faults->dropDma())
        return;
    Cycle done = dma.transfer(eq.now(), bytes);
    eq.schedule(done, [this, addr, src, bytes,
                       on_done = std::move(on_done)] {
        mem.write(addr, src, bytes);
        on_done();
    });
}

void
FpgaSystem::dmaToDevice(uint64_t bytes, std::function<void()> on_done)
{
    Cycle done = dma.transfer(eq.now(), bytes);
    eq.schedule(done, std::move(on_done));
}

TargetDescriptor
FpgaSystem::allocateTarget(const MarshalledTarget &target)
{
    TargetDescriptor desc;
    desc.targetStart = target.targetStart;
    desc.numConsensuses = target.numConsensuses;
    desc.numReads = target.numReads;
    desc.consensusLengths = target.consensusLengths;
    desc.inputBytes = target.totalInputBytes();

    desc.bufferAddr[static_cast<size_t>(IrBuffer::ConsensusBases)] =
        mem.allocate(target.consensusData.size());
    desc.bufferAddr[static_cast<size_t>(IrBuffer::ReadBases)] =
        mem.allocate(target.readData.size());
    desc.bufferAddr[static_cast<size_t>(IrBuffer::ReadQuals)] =
        mem.allocate(target.qualData.size());
    desc.bufferAddr[static_cast<size_t>(IrBuffer::OutFlags)] =
        mem.allocate(target.numReads);
    desc.bufferAddr[static_cast<size_t>(IrBuffer::OutPositions)] =
        mem.allocate(static_cast<uint64_t>(target.numReads) * 4);
    if (perfMon)
        perfMon->deviceMemWatermark(mem.allocated());
    return desc;
}

AccelTargetOutput
FpgaSystem::readOutputs(const TargetDescriptor &desc)
{
    AccelTargetOutput out;
    out.realignFlags = mem.readVec(
        desc.bufferAddr[static_cast<size_t>(IrBuffer::OutFlags)],
        desc.numReads);
    std::vector<uint8_t> raw = mem.readVec(
        desc.bufferAddr[static_cast<size_t>(IrBuffer::OutPositions)],
        static_cast<uint64_t>(desc.numReads) * 4);
    out.newPositions.resize(desc.numReads);
    for (uint32_t j = 0; j < desc.numReads; ++j) {
        out.newPositions[j] =
            static_cast<uint32_t>(raw[j * 4]) |
            (static_cast<uint32_t>(raw[j * 4 + 1]) << 8) |
            (static_cast<uint32_t>(raw[j * 4 + 2]) << 16) |
            (static_cast<uint32_t>(raw[j * 4 + 3]) << 24);
    }
    return out;
}

void
FpgaSystem::runTarget(uint32_t unit, const TargetDescriptor &desc,
                      uint64_t targetId,
                      std::function<void(IrComputeResult &&)> on_done,
                      const IrComputeResult *precomputed)
{
    panic_if(unit >= units.size(), "unit %u out of range", unit);
    panic_if(units[unit]->busy(), "unit %u is busy", unit);

    // Encode the full Table I command sequence for this target.
    std::vector<IrCommand> cmds = buildTargetCommands(
        static_cast<uint8_t>(unit), desc.bufferAddr,
        desc.targetStart, desc.numConsensuses, desc.numReads,
        desc.consensusLengths);
    numCommands += cmds.size();
    ++numTargets;

    // The whole sequence streams through the shared AXILite MMIO
    // hub; command traffic from all units serializes here.
    Cycle delivered = axilite.transfer(
        eq.now(), cmds.size() * cfg.bytesPerCommand);
    if (perfMon)
        perfMon->sampleCmdQueueWait(delivered - eq.now());

    IrUnitModel *u = units[unit].get();
    eq.schedule(delivered, [this, u, targetId, precomputed,
                            cmds = std::move(cmds),
                            on_done = std::move(on_done)]() mutable {
        // The command router decodes each instruction word and
        // routes it to the addressed unit (a genuine encode/decode
        // round trip through the RoCC format).
        for (const IrCommand &cmd : cmds) {
            IrCommand decoded = IrCommand::fromInstruction(
                RoccInstruction::decode(cmd.instruction().encode()),
                cmd.rs1Val, cmd.rs2Val);
            if (decoded.op == IrOpcode::Start) {
                u->launch(targetId, precomputed,
                          [this, on_done = std::move(on_done)](
                              IrComputeResult &&result) mutable {
                              whdTotal.merge(result.whd);
                              on_done(std::move(result));
                          });
                return;
            }
            u->deliver(decoded);
        }
        panic("command sequence had no ir_start");
    });
}

TargetDescriptor
FpgaSystem::runMarshalledTarget(
    uint32_t unit, const MarshalledTarget &target, uint64_t targetId,
    std::function<void(IrComputeResult &&)> on_done,
    const IrComputeResult *precomputed)
{
    TargetDescriptor desc = allocateTarget(target);
    mem.write(desc.bufferAddr[static_cast<size_t>(
                  IrBuffer::ConsensusBases)],
              target.consensusData.data(),
              target.consensusData.size());
    mem.write(desc.bufferAddr[static_cast<size_t>(
                  IrBuffer::ReadBases)],
              target.readData.data(), target.readData.size());
    mem.write(desc.bufferAddr[static_cast<size_t>(
                  IrBuffer::ReadQuals)],
              target.qualData.data(), target.qualData.size());
    runTarget(unit, desc, targetId, std::move(on_done), precomputed);
    return desc;
}

Cycle
FpgaSystem::run()
{
    return eq.run();
}

FpgaRunStats
FpgaSystem::stats() const
{
    FpgaRunStats s;
    s.totalCycles = eq.now();
    s.wallSeconds = clock.cyclesToSeconds(eq.now());
    s.targetsProcessed = numTargets;
    s.commandsIssued = numCommands;
    s.dmaBytes = dma.bytesMoved();
    s.dmaBusyCycles = dma.busyCycles();
    for (const auto &ch : ddr)
        s.ddrBusyCycles += ch->busyCycles();
    double util = 0.0;
    for (const auto &u : units) {
        if (eq.now() > 0)
            util += static_cast<double>(u->busyCycles()) /
                    static_cast<double>(eq.now());
    }
    s.meanUnitUtilization =
        units.empty() ? 0.0 : util / static_cast<double>(units.size());
    s.whd = whdTotal;
    return s;
}

PerfReport
FpgaSystem::perfReport() const
{
    if (!perfMon)
        return PerfReport{};
    perfMon->finalize(eq.now());
    PerfReport rep = perfMon->report();
    rep.clockMhz = cfg.clockMhz;
    return rep;
}

std::vector<UnitTimelineEntry>
FpgaSystem::timeline() const
{
    std::vector<UnitTimelineEntry> all;
    for (const auto &u : units)
        all.insert(all.end(), u->timeline().begin(),
                   u->timeline().end());
    return all;
}

} // namespace iracc
