/**
 * @file
 * The assembled accelerator SoC on the F1 FPGA (paper Figure 6): a
 * sea of IR units, the DDR4 channel(s) behind the arbiter tree and
 * AXI crossbar, the byte-accurate device memory, the PCIe DMA
 * engine, and the RoCC command router fed through the AXILite MMIO
 * hub.
 *
 * The host driver (src/host) talks to this class the way the
 * paper's control program talks to the real FPGA: malloc + DMA the
 * target's byte arrays to device DDR addresses, push the encoded
 * RoCC configuration/start commands, poll completion responses,
 * and read the output buffers back out of device memory.
 */

#ifndef IRACC_ACCEL_FPGA_SYSTEM_HH
#define IRACC_ACCEL_FPGA_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "accel/device_memory.hh"
#include "accel/ir_unit.hh"
#include "accel/memory.hh"
#include "accel/params.hh"
#include "isa/ir_isa.hh"
#include "sim/clock.hh"
#include "sim/event_queue.hh"
#include "sim/perf_monitor.hh"

namespace iracc {

/** Device-memory placement + geometry of one prepared target. */
struct TargetDescriptor
{
    /** DDR addresses of the five per-target buffers. */
    uint64_t bufferAddr[kNumIrBuffers] = {};

    /** ir_set_target operand (window start). */
    uint64_t targetStart = 0;

    uint32_t numConsensuses = 0;
    uint32_t numReads = 0;
    std::vector<uint16_t> consensusLengths;

    /** Input bytes the DMA engine must move for this target. */
    uint64_t inputBytes = 0;
};

/** Aggregate statistics of one FPGA-system simulation. */
struct FpgaRunStats
{
    Cycle totalCycles = 0;
    double wallSeconds = 0.0;
    uint64_t targetsProcessed = 0;
    uint64_t commandsIssued = 0;
    uint64_t dmaBytes = 0;
    Cycle dmaBusyCycles = 0;
    Cycle ddrBusyCycles = 0;
    double meanUnitUtilization = 0.0;
    WhdStats whd;
};

/**
 * Event-driven model of the full accelerator system.
 */
class FpgaSystem
{
  public:
    explicit FpgaSystem(AccelConfig config);

    const AccelConfig &config() const { return cfg; }
    uint32_t numUnits() const { return cfg.numUnits; }
    EventQueue &events() { return eq; }
    Cycle now() const { return eq.now(); }

    /** The FPGA-attached DDR contents. */
    DeviceMemory &memory() { return mem; }
    const DeviceMemory &memory() const { return mem; }

    /** @return true when unit @p unit has no target in flight. */
    bool unitIdle(uint32_t unit) const;

    /**
     * DMA host bytes into device memory at @p addr; the bytes land
     * and @p on_done fires at the transfer-completion event.  The
     * source range must stay alive until then.
     */
    void dmaToDevice(uint64_t addr, const void *src, uint64_t bytes,
                     std::function<void()> on_done);

    /** Timing-only DMA (no payload), for batched transfers whose
     *  payloads are written via memory() directly. */
    void dmaToDevice(uint64_t bytes, std::function<void()> on_done);

    /**
     * Configure and start one prepared target on a unit: encodes
     * the full Table I command sequence, models AXILite delivery,
     * routes the decoded commands to the unit, and launches it.
     * @p on_done receives the datapath result at the response
     * event; the architectural outputs are read back from device
     * memory by the caller.
     *
     * @param precomputed optional precomputed datapath result (a
     *        pure function of the buffer bytes and configuration);
     *        null = the unit computes from the bytes in memory
     */
    void runTarget(uint32_t unit, const TargetDescriptor &desc,
                   uint64_t targetId,
                   std::function<void(IrComputeResult &&)> on_done,
                   const IrComputeResult *precomputed = nullptr);

    /**
     * Convenience for tests and small tools: place a marshalled
     * target into device memory (bypassing DMA timing), then run
     * it.  @return the descriptor used.
     */
    TargetDescriptor runMarshalledTarget(
        uint32_t unit, const MarshalledTarget &target,
        uint64_t targetId,
        std::function<void(IrComputeResult &&)> on_done,
        const IrComputeResult *precomputed = nullptr);

    /**
     * Allocate device-memory buffers for a marshalled target.
     * (Does not move any data.)
     */
    TargetDescriptor allocateTarget(const MarshalledTarget &target);

    /** Read output buffer #1/#2 back for a completed target. */
    AccelTargetOutput readOutputs(const TargetDescriptor &desc);

    /** Drain all scheduled events; @return final cycle. */
    Cycle run();

    /** Collect run statistics (valid after run()). */
    FpgaRunStats stats() const;

    /** Per-unit timelines (Figure 7 reproduction). */
    std::vector<UnitTimelineEntry> timeline() const;

    /** Seconds represented by a cycle count at this clock. */
    double
    cyclesToSeconds(Cycle cycles) const
    {
        return clock.cyclesToSeconds(cycles);
    }

    /** Commands issued so far (RoCC command router counter). */
    uint64_t commandsIssued() const { return numCommands; }

    /**
     * The performance monitor, or null when the configuration left
     * counters off (the default).  Constructed and attached to
     * every channel and unit when config.perfCounters or
     * config.perfTrace is set.
     */
    PerfMonitor *perf() { return perfMon.get(); }
    const PerfMonitor *perf() const { return perfMon.get(); }

    /**
     * Attach a fault injector to every hook point in the system:
     * device memory (write corruption), the DMA/AXILite/DDR shared
     * channels (stalls), the DMA engine (dropped bursts), and every
     * IR unit (hangs, lost responses).  Null detaches.  Mirrors
     * the perf-monitor fan-out in the constructor.
     */
    void attachFaults(FaultInjector *injector);

    /**
     * Finalized counter snapshot.  Returns a disabled (empty)
     * report when counters are off.
     */
    PerfReport perfReport() const;

  private:
    AccelConfig cfg;
    ClockDomain clock;
    EventQueue eq;
    DeviceMemory mem;
    SharedChannel dma;
    SharedChannel axilite;
    std::vector<std::unique_ptr<SharedChannel>> ddr;
    std::vector<std::unique_ptr<IrUnitModel>> units;
    std::unique_ptr<PerfMonitor> perfMon;
    FaultInjector *faults = nullptr;
    uint64_t numCommands = 0;
    uint64_t numTargets = 0;
    WhdStats whdTotal;
};

} // namespace iracc

#endif // IRACC_ACCEL_FPGA_SYSTEM_HH
