#include "accel/ir_compute.hh"

#include <algorithm>

#include "realign/limits.hh"
#include "realign/score.hh"
#include "realign/whd_simd.hh"
#include "util/logging.hh"

namespace iracc {

namespace {

/**
 * Per-call pointer/length scratch.  irCompute is the hot loop of
 * the scheduler's precompute pass and the hardened fallback path;
 * thread_local reuse removes the five vector allocations per call.
 */
struct IrComputeScratch
{
    std::vector<const uint8_t *> consPtr;
    std::vector<uint32_t> consLen;
    std::vector<const uint8_t *> readPtr;
    std::vector<const uint8_t *> qualPtr;
    std::vector<uint32_t> readLen;
};

} // anonymous namespace

IrComputeResult
irCompute(const MarshalledTarget &target, uint32_t width, bool prune)
{
    panic_if(width == 0, "data-parallel width must be >= 1");
    const uint32_t num_cons = target.numConsensuses;
    const uint32_t num_reads = target.numReads;
    panic_if(num_cons == 0 || num_cons > kMaxConsensuses,
             "bad consensus count %u", num_cons);
    panic_if(num_reads > kMaxReads, "bad read count %u", num_reads);

    thread_local IrComputeScratch scratch;

    // Resolve consensus rows (dense layout, ir_set_len lengths).
    scratch.consPtr.resize(num_cons);
    scratch.consLen.resize(num_cons);
    {
        size_t off = 0;
        for (uint32_t i = 0; i < num_cons; ++i) {
            scratch.consPtr[i] = target.consensusData.data() + off;
            scratch.consLen[i] = target.consensusLengths[i];
            off += scratch.consLen[i];
        }
        panic_if(off != target.consensusData.size(),
                 "consensus buffer image size mismatch");
    }

    // Resolve read slots; the end-of-read sentinel (0x00) or the
    // slot boundary delimits each read.
    scratch.readPtr.resize(num_reads);
    scratch.qualPtr.resize(num_reads);
    scratch.readLen.resize(num_reads);
    for (uint32_t j = 0; j < num_reads; ++j) {
        size_t off = static_cast<size_t>(j) * kMaxReadLen;
        scratch.readPtr[j] = target.readData.data() + off;
        scratch.qualPtr[j] = target.qualData.data() + off;
        uint32_t len = 0;
        while (len < kMaxReadLen && scratch.readPtr[j][len] != 0)
            ++len;
        panic_if(len == 0, "empty read slot %u", j);
        scratch.readLen[j] = len;
    }

    const WhdKernel kernel = activeWhdKernel();

    IrComputeResult result;
    MinWhdGrid grid(num_cons, num_reads);

    // --- Stage 1: Hamming Distance Calculator ---------------------
    // The per-pair offset sweep runs through the shared dispatch
    // kernel with pruneChunk = width: the running-minimum register
    // is checked once per width-base chunk, exactly the datapath's
    // per-cycle check.  Cycle accounting is derived from the sweep:
    // one setup cycle per offset started (pruned offsets start
    // too), one cycle per block-RAM row compare actually executed
    // (== the sweep's chunk count), and two cycles per feasible
    // pair to hand the minimum to the selector.
    for (uint32_t i = 0; i < num_cons; ++i) {
        const uint8_t *cons = scratch.consPtr[i];
        const uint32_t m = scratch.consLen[i];
        for (uint32_t j = 0; j < num_reads; ++j) {
            const uint32_t n = scratch.readLen[j];
            if (n > m)
                continue; // read cannot slide on this consensus

            const WhdSweepResult r =
                whdSweep(cons, m, scratch.readPtr[j],
                         scratch.qualPtr[j], n, prune,
                         /*pruneChunk=*/width, kernel);
            grid.set(i, j, r.best, r.bestK);

            const uint64_t offsets = m - n + 1;
            result.whd.offsetsEvaluated += offsets;
            result.whd.comparisonsUnpruned +=
                offsets * static_cast<uint64_t>(n);
            result.whd.comparisons += r.comparisons;
            result.whd.offsetsPruned += r.offsetsPruned;
            result.hdcCycles += offsets; // offset setup cycles
            result.hdcCycles += r.chunks; // row compares executed
            result.hdcCycles += 2; // hand min to the selector
        }
    }

    // --- Stage 2: Consensus Selector ------------------------------
    ConsensusDecision decision = scoreAndSelect(grid);
    result.bestConsensus = decision.bestConsensus;
    // Single-ported dist/pos buffers: one read per cycle while
    // scoring each non-reference consensus, then a final pass to
    // emit the realignment decisions.
    if (num_cons > 1) {
        result.selectorCycles +=
            static_cast<Cycle>(num_cons - 1) * num_reads;
        result.selectorCycles += 4 * (num_cons - 1); // score update
    }
    result.selectorCycles += num_reads; // realignment output pass

    // --- Architectural outputs ------------------------------------
    result.output.realignFlags = decision.realign;
    result.output.newPositions.assign(num_reads, 0);
    for (uint32_t j = 0; j < num_reads; ++j) {
        if (decision.realign[j]) {
            result.output.newPositions[j] =
                decision.newOffset[j] + target.targetStart;
        }
    }
    return result;
}

} // namespace iracc
