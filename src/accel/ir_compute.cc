#include "accel/ir_compute.hh"

#include <algorithm>

#include "realign/limits.hh"
#include "realign/score.hh"
#include "util/logging.hh"

namespace iracc {

IrComputeResult
irCompute(const MarshalledTarget &target, uint32_t width, bool prune)
{
    panic_if(width == 0, "data-parallel width must be >= 1");
    const uint32_t num_cons = target.numConsensuses;
    const uint32_t num_reads = target.numReads;
    panic_if(num_cons == 0 || num_cons > kMaxConsensuses,
             "bad consensus count %u", num_cons);
    panic_if(num_reads > kMaxReads, "bad read count %u", num_reads);

    // Resolve consensus rows (dense layout, ir_set_len lengths).
    std::vector<const uint8_t *> cons_ptr(num_cons);
    std::vector<uint32_t> cons_len(num_cons);
    {
        size_t off = 0;
        for (uint32_t i = 0; i < num_cons; ++i) {
            cons_ptr[i] = target.consensusData.data() + off;
            cons_len[i] = target.consensusLengths[i];
            off += cons_len[i];
        }
        panic_if(off != target.consensusData.size(),
                 "consensus buffer image size mismatch");
    }

    // Resolve read slots; the end-of-read sentinel (0x00) or the
    // slot boundary delimits each read.
    std::vector<const uint8_t *> read_ptr(num_reads);
    std::vector<const uint8_t *> qual_ptr(num_reads);
    std::vector<uint32_t> read_len(num_reads);
    for (uint32_t j = 0; j < num_reads; ++j) {
        size_t off = static_cast<size_t>(j) * kMaxReadLen;
        read_ptr[j] = target.readData.data() + off;
        qual_ptr[j] = target.qualData.data() + off;
        uint32_t len = 0;
        while (len < kMaxReadLen && read_ptr[j][len] != 0)
            ++len;
        panic_if(len == 0, "empty read slot %u", j);
        read_len[j] = len;
    }

    IrComputeResult result;
    MinWhdGrid grid(num_cons, num_reads);

    // --- Stage 1: Hamming Distance Calculator ---------------------
    for (uint32_t i = 0; i < num_cons; ++i) {
        const uint8_t *cons = cons_ptr[i];
        const uint32_t m = cons_len[i];
        for (uint32_t j = 0; j < num_reads; ++j) {
            const uint8_t *read = read_ptr[j];
            const uint8_t *qual = qual_ptr[j];
            const uint32_t n = read_len[j];
            if (n > m)
                continue; // read cannot slide on this consensus

            uint32_t best = kWhdInfinity;
            uint32_t best_k = 0;
            for (uint32_t k = 0; k + n <= m; ++k) {
                ++result.whd.offsetsEvaluated;
                result.whd.comparisonsUnpruned += n;
                ++result.hdcCycles; // offset setup / pointer reset

                uint32_t whd = 0;
                bool pruned = false;
                for (uint32_t chunk = 0; chunk < n;
                     chunk += width) {
                    uint32_t lanes = std::min(width, n - chunk);
                    ++result.hdcCycles; // one block-RAM row compare
                    result.whd.comparisons += lanes;
                    for (uint32_t lane = 0; lane < lanes; ++lane) {
                        uint32_t p = chunk + lane;
                        if (cons[k + p] != read[p])
                            whd = whdAccumulate(whd, qual[p]);
                    }
                    // The running-minimum register is checked once
                    // per cycle (per chunk): computation pruning.
                    if (prune && whd >= best) {
                        pruned = true;
                        break;
                    }
                }
                if (pruned) {
                    ++result.whd.offsetsPruned;
                    continue;
                }
                if (whd < best) {
                    best = whd;
                    best_k = k;
                }
            }
            grid.set(i, j, best, best_k);
            result.hdcCycles += 2; // hand min to the selector
        }
    }

    // --- Stage 2: Consensus Selector ------------------------------
    ConsensusDecision decision = scoreAndSelect(grid);
    result.bestConsensus = decision.bestConsensus;
    // Single-ported dist/pos buffers: one read per cycle while
    // scoring each non-reference consensus, then a final pass to
    // emit the realignment decisions.
    if (num_cons > 1) {
        result.selectorCycles +=
            static_cast<Cycle>(num_cons - 1) * num_reads;
        result.selectorCycles += 4 * (num_cons - 1); // score update
    }
    result.selectorCycles += num_reads; // realignment output pass

    // --- Architectural outputs ------------------------------------
    result.output.realignFlags = decision.realign;
    result.output.newPositions.assign(num_reads, 0);
    for (uint32_t j = 0; j < num_reads; ++j) {
        if (decision.realign[j]) {
            result.output.newPositions[j] =
                decision.newOffset[j] + target.targetStart;
        }
    }
    return result;
}

} // namespace iracc
