#include "accel/params.hh"

#include <sstream>

namespace iracc {

std::string
AccelConfig::describe() const
{
    std::ostringstream out;
    out << numUnits << " units @ " << clockMhz << " MHz, "
        << dataParallelWidth << "-wide HDC, pruning "
        << (pruning ? "on" : "off") << ", " << ddrChannels
        << " DDR channel(s)";
    return out.str();
}

AccelConfig
AccelConfig::paperOptimized()
{
    return AccelConfig{};
}

AccelConfig
AccelConfig::taskParallelOnly()
{
    AccelConfig cfg;
    cfg.dataParallelWidth = 1;
    return cfg;
}

AccelConfig
AccelConfig::hlsSdaccel()
{
    AccelConfig cfg;
    cfg.numUnits = 16;          // Xilinx OpenCL async scheduling cap
    cfg.dataParallelWidth = 1;  // HLS failed to extract SIMD
    cfg.pruning = false;        // ambiguous memory deps defeat HLS
    return cfg;
}

} // namespace iracc
