#include "accel/resource_model.hh"

#include "realign/limits.hh"

namespace iracc {

namespace {

/** Per-unit BRAM blocks spent on MemReader/MemWriter and arbiter
 *  queues (five decoupled channels, Figure 6-left). */
constexpr uint32_t kQueueBlocksPerUnit = 11;

/** Practical BRAM ceiling: above ~90 % the placer can no longer
 *  meet 125 MHz timing (the paper deploys at "close to 90 %"). */
constexpr double kRoutableBramCeiling = 0.90;

/** System-level BRAM blocks: DDR controller FIFOs, AXI crossbar,
 *  DMA buffers, RoCC command/response queues. */
constexpr uint32_t kSystemBlocks = 150;

/** CLB fraction of the static shell + memory system. */
constexpr double kBaseClb = 0.05;

/** CLB fraction per scalar IR unit (calibrated: 32 units with the
 *  32-wide datapath measure 32.53 %). */
constexpr double kClbPerUnitScalar = 0.0057;

/** Additional CLB fraction per comparator lane beyond the first. */
constexpr double kClbPerLane = 0.000094;

} // anonymous namespace

ResourceEstimate
estimateResources(const AccelConfig &config)
{
    ResourceEstimate est;

    // Buffer inventory of one unit (Figure 6 "Structure Sizes"),
    // one byte per base / quality score:
    const uint64_t consensus_bits =
        uint64_t{kMaxConsensuses} * kMaxConsensusLen * 8;
    const uint64_t read_bits = uint64_t{kMaxReads} * kMaxReadLen * 8;
    const uint64_t qual_bits = read_bits;
    const uint64_t out_flag_bits = uint64_t{kMaxReads} * 8;
    const uint64_t out_pos_bits = uint64_t{kMaxReads} * 32;
    // Selector state: dist+pos for REF, CURR and MIN consensus
    // (three read-length buffers of 32-bit dist + 16-bit pos).
    const uint64_t selector_bits = 3 * uint64_t{kMaxReads} * (32 + 16);

    est.bramBitsPerUnit = consensus_bits + read_bits + qual_bits +
                          out_flag_bits + out_pos_bits +
                          selector_bits;

    const uint32_t data_blocks = static_cast<uint32_t>(
        (est.bramBitsPerUnit + kBram36Bits - 1) / kBram36Bits);
    est.bramBlocksPerUnit = data_blocks + kQueueBlocksPerUnit;
    est.bramBlocksTotal =
        est.bramBlocksPerUnit * config.numUnits + kSystemBlocks;
    est.bramUtilization = static_cast<double>(est.bramBlocksTotal) /
                          static_cast<double>(kVu9pBram36Blocks);

    double lanes = static_cast<double>(config.dataParallelWidth - 1);
    est.clbUtilization = kBaseClb +
        config.numUnits * (kClbPerUnitScalar + kClbPerLane * lanes);

    est.fits = est.bramUtilization < kRoutableBramCeiling &&
               est.clbUtilization < 1.0;
    return est;
}

uint32_t
maxUnitsThatFit(AccelConfig config)
{
    uint32_t units = 0;
    for (uint32_t n = 1; n <= 256; ++n) {
        config.numUnits = n;
        if (!estimateResources(config).fits)
            break;
        units = n;
    }
    return units;
}

} // namespace iracc
