/**
 * @file
 * Configuration of the simulated FPGA accelerator system.
 *
 * Defaults reproduce the paper's deployed design point: 32 IR units
 * at 125 MHz on a Xilinx Virtex UltraScale+ VU9P, one of four DDR4
 * channels instantiated, 256-bit TileLink unit interfaces, 512-bit
 * PCIe DMA, 32-wide data-parallel Hamming distance calculators with
 * computation pruning.
 */

#ifndef IRACC_ACCEL_PARAMS_HH
#define IRACC_ACCEL_PARAMS_HH

#include <cstdint>
#include <string>

namespace iracc {

/** Parameters of the simulated accelerator system. */
struct AccelConfig
{
    /** Number of IR accelerator units instantiated. */
    uint32_t numUnits = 32;

    /** Fabric clock in MHz (F1 clock recipes: 125 or 250). */
    double clockMhz = 125.0;

    /**
     * Base comparisons (and quality accumulates) per cycle in the
     * Hamming distance calculator: 1 = scalar (Figure 5), 32 =
     * data-parallel (Figure 8, one 32-byte block RAM row/cycle).
     */
    uint32_t dataParallelWidth = 32;

    /** Enable computation pruning (Section III-A). */
    bool pruning = true;

    /** DDR4 channels instantiated (paper uses 1 of 4). */
    uint32_t ddrChannels = 1;

    /**
     * DDR channel payload bandwidth in bytes per fabric cycle.
     * 64 B/cycle at 125 MHz = 8 GB/s, the practical AXI4-512
     * throughput of one F1 DDR4 interface.
     */
    uint64_t ddrBytesPerCycle = 64;

    /** Fixed DDR access latency in cycles. */
    uint64_t ddrLatency = 30;

    /** Per-unit TileLink interface width (256 bits = 32 B/cycle). */
    uint64_t unitLinkBytesPerCycle = 32;

    /**
     * PCIe DMA bandwidth in bytes per fabric cycle (512-bit AXI4 at
     * ~12 GB/s effective = 96 B/cycle at 125 MHz).
     */
    uint64_t dmaBytesPerCycle = 96;

    /** PCIe DMA fixed latency in cycles. */
    uint64_t dmaLatency = 250;

    /**
     * AXILite MMIO hub bandwidth in bytes per cycle (32-bit
     * interface = 4 B/cycle).  One RoCC command is 20 bytes
     * (instruction word + two 64-bit operands), so commands cost 5
     * cycles each and all units' command traffic serializes on the
     * hub, as on the real device.
     */
    uint64_t axiliteBytesPerCycle = 4;

    /** Bytes per RoCC command on the AXILite hub. */
    uint64_t bytesPerCommand = 20;

    /** Cycles to poll/drain one response from the MMIO queue. */
    uint64_t cyclesPerResponse = 8;

    /**
     * Collect performance counters (src/sim/perf_monitor).  Off by
     * default: when false no PerfMonitor is constructed and every
     * instrumentation site reduces to one null-pointer test, so
     * the hot path is unchanged.
     */
    bool perfCounters = false;

    /** Also record timeline trace events (implies counters). */
    bool perfTrace = false;

    /** @return a short human-readable description. */
    std::string describe() const;

    /** Paper configuration: 32 units, async, data-parallel. */
    static AccelConfig paperOptimized();

    /** Task-parallel only: scalar datapath (IRAcc-TaskP). */
    static AccelConfig taskParallelOnly();

    /**
     * HLS/SDAccel comparison point (Section V-B): OpenCL limits the
     * schedulable compute units to 16, and HLS could not extract
     * the data parallelism or the pruning control flow.
     */
    static AccelConfig hlsSdaccel();
};

} // namespace iracc

#endif // IRACC_ACCEL_PARAMS_HH
