#include "accel/ir_unit.hh"

#include "fault/fault.hh"
#include "util/logging.hh"

namespace iracc {

IrUnitModel::IrUnitModel(uint32_t id, const AccelConfig *config,
                         EventQueue *queue, SharedChannel *ddr,
                         DeviceMemory *memory)
    : unitId(id), cfg(config), eq(queue), ddrChannel(ddr),
      mem(memory)
{
}

void
IrUnitModel::deliver(const IrCommand &cmd)
{
    panic_if(cmd.unit != unitId, "command for unit %u routed to %u",
             cmd.unit, unitId);
    panic_if(inFlight,
             "unit %u reconfigured while a target is in flight",
             unitId);
    switch (cmd.op) {
      case IrOpcode::SetAddr: {
        panic_if(cmd.rs1Val >= kNumIrBuffers,
                 "ir_set_addr: buffer index %llu out of range",
                 static_cast<unsigned long long>(cmd.rs1Val));
        bufferAddr[cmd.rs1Val] = cmd.rs2Val;
        bufferAddrSet[cmd.rs1Val] = true;
        break;
      }
      case IrOpcode::SetTarget:
        targetStart = cmd.rs1Val;
        break;
      case IrOpcode::SetSize:
        panic_if(cmd.rs1Val == 0 || cmd.rs1Val > kMaxConsensuses,
                 "ir_set_size: bad consensus count");
        panic_if(cmd.rs2Val > kMaxReads,
                 "ir_set_size: bad read count");
        numConsensuses = static_cast<uint32_t>(cmd.rs1Val);
        numReads = static_cast<uint32_t>(cmd.rs2Val);
        break;
      case IrOpcode::SetLen:
        panic_if(cmd.rs1Val >= kMaxConsensuses,
                 "ir_set_len: consensus id out of range");
        panic_if(cmd.rs2Val > kMaxConsensusLen,
                 "ir_set_len: length exceeds consensus buffer");
        consensusLen[cmd.rs1Val] =
            static_cast<uint16_t>(cmd.rs2Val);
        break;
      case IrOpcode::Start:
        panic("ir_start must be dispatched through launch()");
    }
}

MarshalledTarget
IrUnitModel::fetchInputs() const
{
    MarshalledTarget m;
    m.numConsensuses = numConsensuses;
    m.numReads = numReads;
    m.targetStart = static_cast<uint32_t>(targetStart);

    uint64_t cons_bytes = 0;
    for (uint32_t i = 0; i < numConsensuses; ++i) {
        m.consensusLengths.push_back(consensusLen[i]);
        cons_bytes += consensusLen[i];
    }
    m.consensusData = mem->readVec(
        bufferAddr[static_cast<size_t>(IrBuffer::ConsensusBases)],
        cons_bytes);
    uint64_t read_bytes = static_cast<uint64_t>(numReads) *
                          kMaxReadLen;
    m.readData = mem->readVec(
        bufferAddr[static_cast<size_t>(IrBuffer::ReadBases)],
        read_bytes);
    m.qualData = mem->readVec(
        bufferAddr[static_cast<size_t>(IrBuffer::ReadQuals)],
        read_bytes);
    return m;
}

void
IrUnitModel::writeOutputs(const AccelTargetOutput &out) const
{
    mem->write(bufferAddr[static_cast<size_t>(IrBuffer::OutFlags)],
               out.realignFlags.data(), out.realignFlags.size());
    // Positions are stored little-endian, 4 bytes per read
    // (output buffer #2: 256 x 4 bytes).
    std::vector<uint8_t> pos_bytes;
    pos_bytes.reserve(out.newPositions.size() * 4);
    for (uint32_t p : out.newPositions) {
        pos_bytes.push_back(static_cast<uint8_t>(p));
        pos_bytes.push_back(static_cast<uint8_t>(p >> 8));
        pos_bytes.push_back(static_cast<uint8_t>(p >> 16));
        pos_bytes.push_back(static_cast<uint8_t>(p >> 24));
    }
    mem->write(
        bufferAddr[static_cast<size_t>(IrBuffer::OutPositions)],
        pos_bytes.data(), pos_bytes.size());
}

void
IrUnitModel::launch(uint64_t targetId,
                    const IrComputeResult *precomputed,
                    std::function<void(IrComputeResult &&)>
                        on_response)
{
    panic_if(inFlight, "unit %u started while busy", unitId);
    for (uint32_t b = 0; b < kNumIrBuffers; ++b)
        panic_if(!bufferAddrSet[b],
                 "unit %u started with buffer %u unconfigured",
                 unitId, b);
    panic_if(numConsensuses == 0,
             "unit %u started without ir_set_size", unitId);
    inFlight = true;

    // UnitHang fault: the FSM accepted ir_start but the datapath
    // deadlocks.  No events are scheduled, inFlight stays true, and
    // the response callback is destroyed unfired -- exactly what
    // the host's watchdog has to recover from.
    if (faults && faults->hangUnit(unitId))
        return;

    UnitTimelineEntry entry;
    entry.unit = unitId;
    entry.targetId = targetId;
    entry.dispatched = eq->now();

    // Loading: the three MemReaders stream the input buffer images
    // through the arbiter tree; in-order service on the shared DDR
    // channel models the 32:1 arbitration.
    MarshalledTarget target = fetchInputs();
    if (perf) {
        // The three MemReader streams serialize through the unit's
        // single TileLink port: every non-empty stream is a 5:1
        // arbiter grant, and all but the first queue behind a
        // sibling (a conflict).
        uint64_t streams =
            (target.consensusData.empty() ? 0u : 1u) +
            (target.readData.empty() ? 0u : 1u) +
            (target.qualData.empty() ? 0u : 1u);
        perf->unitArb(unitId, streams,
                      streams > 0 ? streams - 1 : 0);
        perf->bufferWatermark(perfBufferBase +
                                  static_cast<size_t>(
                                      IrBuffer::ConsensusBases),
                              target.consensusData.size());
        perf->bufferWatermark(
            perfBufferBase +
                static_cast<size_t>(IrBuffer::ReadBases),
            target.readData.size());
        perf->bufferWatermark(
            perfBufferBase +
                static_cast<size_t>(IrBuffer::ReadQuals),
            target.qualData.size());
    }
    Cycle load_done = ddrChannel->transfer(
        eq->now(), target.totalInputBytes(),
        cfg->unitLinkBytesPerCycle);

    eq->schedule(load_done, [this, target = std::move(target),
                             precomputed, entry,
                             on_response = std::move(on_response)]()
                                mutable {
        entry.loaded = eq->now();

        // Computing: functional datapath model with cycle costs.
        // The result is a pure function of (bytes, width, prune);
        // the host may have precomputed it off the event loop.
        IrComputeResult result = precomputed
            ? *precomputed
            : irCompute(target, cfg->dataParallelWidth,
                        cfg->pruning);
        Cycle compute_done = eq->now() + result.totalCycles();

        eq->schedule(compute_done, [this, entry,
                                    result = std::move(result),
                                    on_response =
                                        std::move(on_response)]()
                                       mutable {
            entry.computed = eq->now();

            // Writing: MemWriters drain output buffers #1/#2 into
            // device memory, where the host will read them.
            writeOutputs(result.output);
            if (perf) {
                // The two MemWriter streams are the remaining 5:1
                // arbiter requesters.
                perf->unitArb(unitId, 2, 1);
                perf->bufferWatermark(
                    perfBufferBase +
                        static_cast<size_t>(IrBuffer::OutFlags),
                    result.output.realignFlags.size());
                perf->bufferWatermark(
                    perfBufferBase +
                        static_cast<size_t>(IrBuffer::OutPositions),
                    result.output.newPositions.size() * 4);
            }
            Cycle write_done = ddrChannel->transfer(
                eq->now(),
                static_cast<uint64_t>(result.output.realignFlags
                                          .size()) * 5,
                cfg->unitLinkBytesPerCycle);
            Cycle respond = write_done + cfg->cyclesPerResponse;

            eq->schedule(respond, [this, entry,
                                   result = std::move(result),
                                   on_response =
                                       std::move(on_response)]()
                                      mutable {
                // DropResponse fault: the outputs are already in
                // device memory but the RoCC completion is lost.
                // The unit never returns to Idle.
                if (faults && faults->dropResponse(unitId))
                    return;
                entry.finished = eq->now();
                totalBusy += entry.finished - entry.dispatched;
                ++numTargets;
                if (perf) {
                    perf->unitTarget(unitId, entry.targetId,
                                     entry.dispatched, entry.loaded,
                                     entry.computed,
                                     entry.finished);
                }
                entries.push_back(entry);
                inFlight = false;
                on_response(std::move(result));
            });
        });
    });
}

} // namespace iracc
