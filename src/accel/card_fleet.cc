#include "accel/card_fleet.hh"

#include <algorithm>

#include "obs/flight_recorder.hh"
#include "util/logging.hh"

namespace iracc {

FleetCardExecStats &
FleetExecStats::cardRow(uint32_t id)
{
    auto it = std::find_if(cards.begin(), cards.end(),
                           [&](const FleetCardExecStats &c) {
                               return c.card == id;
                           });
    if (it != cards.end())
        return *it;
    FleetCardExecStats row;
    row.card = id;
    auto pos = std::lower_bound(
        cards.begin(), cards.end(), row,
        [](const FleetCardExecStats &a,
           const FleetCardExecStats &b) { return a.card < b.card; });
    return *cards.insert(pos, row);
}

void
FleetExecStats::merge(const FleetExecStats &other)
{
    for (const FleetCardExecStats &oc : other.cards) {
        FleetCardExecStats &row = cardRow(oc.card);
        row.busyCycles += oc.busyCycles;
        row.targets += oc.targets;
        row.shards += oc.shards;
        row.steals += oc.steals;
        row.migrations += oc.migrations;
    }
}

FleetLease::FleetLease(const CardFleet *fleet)
    : owner(fleet), numCards(fleet->numCards())
{
    systems.reserve(numCards);
    for (uint32_t k = 0; k < numCards; ++k) {
        systems.push_back(
            std::make_unique<FpgaSystem>(fleet->config().card));
    }
    obs::frEmit(obs::FrSeverity::Debug, obs::FrCategory::Fleet,
                obs::FrCode::FleetLease, 0, -1, numCards,
                fleet->config().card.numUnits);
}

FleetLease::~FleetLease()
{
    // A moved-from lease has no owner; only the final holder posts
    // its accounting back.
    if (owner != nullptr) {
        for (const FleetCardExecStats &row : stats.cards) {
            obs::frEmit(obs::FrSeverity::Debug,
                        obs::FrCategory::Fleet,
                        obs::FrCode::FleetMerge, row.busyCycles,
                        static_cast<int32_t>(row.card),
                        row.targets, row.steals);
        }
        obs::frEmit(obs::FrSeverity::Debug, obs::FrCategory::Fleet,
                    obs::FrCode::FleetRelease, 0, -1, numCards);
        owner->release(stats);
    }
    owner = nullptr;
}

const FleetConfig &
FleetLease::config() const
{
    return owner->config();
}

const FaultPlan &
FleetLease::cardPlan(uint32_t k) const
{
    return owner->cardPlan(k);
}

CardFleet::CardFleet(FleetConfig config) : cfg(std::move(config))
{
    fatal_if(cfg.cards == 0, "a card fleet needs >= 1 card");
    fatal_if(cfg.shardTargets == 0,
             "fleet shards need >= 1 target each");
}

const FaultPlan &
CardFleet::cardPlan(uint32_t k) const
{
    if (k < cfg.cardPlans.size())
        return cfg.cardPlans[k];
    return emptyPlan;
}

FleetLease
CardFleet::lease() const
{
    {
        std::lock_guard<std::mutex> lock(mu);
        ++leases;
    }
    return FleetLease(this);
}

FleetExecStats
CardFleet::totals() const
{
    std::lock_guard<std::mutex> lock(mu);
    return cumulative;
}

uint64_t
CardFleet::leasesIssued() const
{
    std::lock_guard<std::mutex> lock(mu);
    return leases;
}

void
CardFleet::release(const FleetExecStats &stats) const
{
    std::lock_guard<std::mutex> lock(mu);
    cumulative.merge(stats);
}

} // namespace iracc
