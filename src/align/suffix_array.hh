/**
 * @file
 * Suffix array with exact-match range queries -- the index substrate
 * of the primary-alignment pipeline (the paper's Figure 2 shows
 * "suffix array lookup" as one of BWA-MEM's stage buckets).
 *
 * Construction uses the prefix-doubling algorithm (O(n log n) with
 * radix-free std::sort ranks, O(n log^2 n) worst case), which is
 * simple, dependency-free, and plenty for the scaled genomes IRACC
 * simulates.
 */

#ifndef IRACC_ALIGN_SUFFIX_ARRAY_HH
#define IRACC_ALIGN_SUFFIX_ARRAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "genomics/base.hh"

namespace iracc {

/** Half-open match range in suffix-array order. */
struct SaRange
{
    int64_t lo = 0; ///< first matching suffix rank
    int64_t hi = 0; ///< one past the last matching rank

    int64_t count() const { return hi - lo; }
    bool empty() const { return hi <= lo; }
};

/** Suffix array over one contig. */
class SuffixArray
{
  public:
    /** Build the index for @p text. */
    explicit SuffixArray(const BaseSeq &text);

    /** @return number of indexed positions. */
    int64_t size() const { return static_cast<int64_t>(sa.size()); }

    /** @return text position of the suffix with rank @p r. */
    int64_t position(int64_t r) const { return sa.at(
        static_cast<size_t>(r)); }

    /**
     * Find all exact occurrences of @p pattern.
     * @return the suffix-rank range (possibly empty)
     */
    SaRange find(const BaseSeq &pattern) const;

    /**
     * Length of the longest prefix of @p pattern (starting at
     * @p offset) that occurs in the text, and its match range --
     * the SMEM-style maximal-exact-match primitive.
     */
    int64_t longestPrefixMatch(const BaseSeq &pattern, size_t offset,
                               SaRange &range) const;

  private:
    const BaseSeq text;
    std::vector<int64_t> sa;

    /** Lexicographic compare of pattern against suffix sa[r]. */
    int comparePattern(const BaseSeq &pattern, size_t plen,
                       int64_t r) const;
};

} // namespace iracc

#endif // IRACC_ALIGN_SUFFIX_ARRAY_HH
