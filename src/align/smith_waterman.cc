#include "align/smith_waterman.hh"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/logging.hh"

namespace iracc {

namespace {

constexpr int32_t kNegInf =
    std::numeric_limits<int32_t>::min() / 4;

/** Traceback direction tags. */
enum class Dir : uint8_t { None, Diag, Up, Left };

} // anonymous namespace

SwAlignment
smithWaterman(const BaseSeq &window, const BaseSeq &read,
              const SwParams &p)
{
    const int64_t m = static_cast<int64_t>(window.size());
    const int64_t n = static_cast<int64_t>(read.size());
    panic_if(n == 0, "empty read");
    panic_if(m == 0, "empty window");

    // DP over rows i = read prefix length (0..n), cols j = window
    // prefix length (0..m).  M = match/mismatch state, X = gap in
    // read (deletion, consumes window), Y = gap in window
    // (insertion, consumes read).  Semi-global: row 0 is free
    // (alignment may start at any window offset); the answer is the
    // best cell in row n (alignment may end anywhere).
    const size_t cols = static_cast<size_t>(m) + 1;
    std::vector<int32_t> M((static_cast<size_t>(n) + 1) * cols,
                           kNegInf);
    std::vector<int32_t> X((static_cast<size_t>(n) + 1) * cols,
                           kNegInf);
    std::vector<int32_t> Y((static_cast<size_t>(n) + 1) * cols,
                           kNegInf);
    std::vector<uint8_t> back((static_cast<size_t>(n) + 1) * cols, 0);
    auto at = [cols](int64_t i, int64_t j) {
        return static_cast<size_t>(i) * cols + static_cast<size_t>(j);
    };

    for (int64_t j = 0; j <= m; ++j)
        M[at(0, j)] = 0; // free leading window gap

    SwAlignment result;
    for (int64_t i = 1; i <= n; ++i) {
        for (int64_t j = 0; j <= m; ++j) {
            // Y: insertion (read base against nothing).
            int32_t open_y = M[at(i - 1, j)] - p.gapOpenPenalty;
            int32_t ext_y = Y[at(i - 1, j)] - p.gapExtendPenalty;
            Y[at(i, j)] = std::max(open_y, ext_y);

            if (j == 0) {
                M[at(i, j)] = kNegInf;
                X[at(i, j)] = kNegInf;
                continue;
            }

            // X: deletion (window base skipped).
            int32_t open_x = M[at(i, j - 1)] - p.gapOpenPenalty;
            int32_t ext_x = X[at(i, j - 1)] - p.gapExtendPenalty;
            X[at(i, j)] = std::max(open_x, ext_x);

            // M: diagonal step consuming both.
            int32_t sub = window[static_cast<size_t>(j - 1)] ==
                           read[static_cast<size_t>(i - 1)]
                ? p.matchScore
                : -p.mismatchPenalty;
            int32_t best_prev = std::max(
                {M[at(i - 1, j - 1)], X[at(i - 1, j - 1)],
                 Y[at(i - 1, j - 1)]});
            M[at(i, j)] = best_prev == kNegInf ? kNegInf
                                               : best_prev + sub;
            ++result.cellsComputed;
        }
    }

    // Pick the best end state in row n.
    int64_t end_j = 0;
    int32_t best = kNegInf;
    char end_state = 'M';
    for (int64_t j = 0; j <= m; ++j) {
        if (M[at(n, j)] > best) {
            best = M[at(n, j)];
            end_j = j;
            end_state = 'M';
        }
        if (Y[at(n, j)] > best) {
            best = Y[at(n, j)];
            end_j = j;
            end_state = 'Y';
        }
        // Ending in X (trailing deletion) is never optimal with
        // positive gap penalties; skip it.
    }
    result.score = best;

    // Traceback to a CIGAR (reversed, then flipped).
    std::vector<CigarElem> rev;
    auto push = [&rev](CigarOp op) {
        if (!rev.empty() && rev.back().op == op)
            ++rev.back().length;
        else
            rev.push_back({1, op});
    };

    int64_t i = n, j = end_j;
    char state = end_state;
    while (i > 0) {
        if (state == 'M') {
            int32_t here = M[at(i, j)];
            push(CigarOp::Match);
            int32_t sub = here -
                std::max({M[at(i - 1, j - 1)], X[at(i - 1, j - 1)],
                          Y[at(i - 1, j - 1)]});
            (void)sub;
            // Choose predecessor state.
            int32_t diag_m = M[at(i - 1, j - 1)];
            int32_t diag_x = X[at(i - 1, j - 1)];
            int32_t diag_y = Y[at(i - 1, j - 1)];
            --i;
            --j;
            if (diag_m >= diag_x && diag_m >= diag_y)
                state = 'M';
            else if (diag_x >= diag_y)
                state = 'X';
            else
                state = 'Y';
        } else if (state == 'X') {
            push(CigarOp::Delete);
            int32_t here = X[at(i, j)];
            bool opened = here == M[at(i, j - 1)] - p.gapOpenPenalty;
            --j;
            state = opened ? 'M' : 'X';
        } else { // 'Y'
            push(CigarOp::Insert);
            int32_t here = Y[at(i, j)];
            bool opened = here == M[at(i - 1, j)] - p.gapOpenPenalty;
            --i;
            state = opened ? 'M' : 'Y';
        }
    }
    result.windowOffset = j;

    std::reverse(rev.begin(), rev.end());
    result.cigar = Cigar(std::move(rev));
    return result;
}

} // namespace iracc
