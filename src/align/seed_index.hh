/**
 * @file
 * Uniform interface over the two exact-match index substrates --
 * the plain suffix array and the FM-index -- so the aligner's
 * seeding stage can use either (BWA uses the FM-index; the suffix
 * array is the faster choice at IRACC's scaled genome sizes).
 */

#ifndef IRACC_ALIGN_SEED_INDEX_HH
#define IRACC_ALIGN_SEED_INDEX_HH

#include <memory>

#include "align/fm_index.hh"
#include "align/suffix_array.hh"

namespace iracc {

/** Which index structure backs the seeding stage. */
enum class SeedIndexKind {
    SuffixArray,
    FmIndex,
};

/** Abstract exact-match index. */
class SeedIndex
{
  public:
    virtual ~SeedIndex() = default;

    /** All exact occurrences of a pattern. */
    virtual SaRange find(const BaseSeq &pattern) const = 0;

    /** Text position of the suffix with the given rank. */
    virtual int64_t position(int64_t rank) const = 0;

    /** Longest matching prefix of pattern[offset..]. */
    virtual int64_t longestPrefixMatch(const BaseSeq &pattern,
                                       size_t offset,
                                       SaRange &range) const = 0;
};

/** Build the selected index over a text. */
std::unique_ptr<SeedIndex> makeSeedIndex(SeedIndexKind kind,
                                         const BaseSeq &text);

} // namespace iracc

#endif // IRACC_ALIGN_SEED_INDEX_HH
