#include "align/fm_index.hh"

#include <algorithm>

#include "util/logging.hh"

namespace iracc {

int
FmIndex::charRank(char c)
{
    switch (c) {
      case '$': return 0;
      case 'A': return 1;
      case 'C': return 2;
      case 'G': return 3;
      case 'N': return 4;
      case 'T': return 5;
      default:
        panic("FM-index: unsupported character '%c'", c);
    }
}

FmIndex::FmIndex(const BaseSeq &text)
    : textLen(static_cast<int64_t>(text.size()))
{
    // Sentinel-terminated text; '$' (0x24) sorts before every base
    // in ASCII, matching charRank order ($ < A < C < G < N < T).
    BaseSeq t = text + '$';
    const int64_t n = static_cast<int64_t>(t.size());
    SuffixArray sa(t);

    bwt.resize(static_cast<size_t>(n));
    sampledSa.assign(static_cast<size_t>(n), -1);
    std::array<int64_t, kAlphabet> counts{};
    for (int64_t r = 0; r < n; ++r) {
        int64_t pos = sa.position(r);
        char prev = pos == 0 ? '$'
                             : t[static_cast<size_t>(pos - 1)];
        bwt[static_cast<size_t>(r)] =
            static_cast<uint8_t>(charRank(prev));
        ++counts[static_cast<size_t>(charRank(
            t[static_cast<size_t>(pos)]))];
        if (pos % kSaSample == 0)
            sampledSa[static_cast<size_t>(r)] = pos;
    }

    // C table: cTable[c] = number of text characters with rank < c.
    cTable[0] = 0;
    for (int c = 0; c < kAlphabet; ++c)
        cTable[static_cast<size_t>(c + 1)] =
            cTable[static_cast<size_t>(c)] +
            counts[static_cast<size_t>(c)];

    // Occ checkpoints every kOccSample BWT positions.
    const int64_t blocks = n / kOccSample + 1;
    occSamples.resize(static_cast<size_t>(blocks));
    std::array<int64_t, kAlphabet> running{};
    for (int64_t i = 0; i < n; ++i) {
        if (i % kOccSample == 0)
            occSamples[static_cast<size_t>(i / kOccSample)] =
                running;
        ++running[bwt[static_cast<size_t>(i)]];
    }
    if ((n % kOccSample) == 0 &&
        static_cast<size_t>(n / kOccSample) < occSamples.size()) {
        occSamples[static_cast<size_t>(n / kOccSample)] = running;
    }
}

int64_t
FmIndex::occ(int c, int64_t i) const
{
    panic_if(i < 0 || i > static_cast<int64_t>(bwt.size()),
             "occ index out of range");
    int64_t block = i / kOccSample;
    if (static_cast<size_t>(block) >= occSamples.size())
        block = static_cast<int64_t>(occSamples.size()) - 1;
    int64_t count =
        occSamples[static_cast<size_t>(block)][
            static_cast<size_t>(c)];
    for (int64_t j = block * kOccSample; j < i; ++j)
        count += bwt[static_cast<size_t>(j)] == c ? 1 : 0;
    return count;
}

int64_t
FmIndex::lf(int64_t i) const
{
    int c = bwt[static_cast<size_t>(i)];
    return cTable[static_cast<size_t>(c)] + occ(c, i);
}

SaRange
FmIndex::find(const BaseSeq &pattern) const
{
    panic_if(pattern.empty(), "empty pattern");
    int64_t lo = 0;
    int64_t hi = static_cast<int64_t>(bwt.size());
    for (auto it = pattern.rbegin(); it != pattern.rend(); ++it) {
        int c = charRank(*it);
        lo = cTable[static_cast<size_t>(c)] + occ(c, lo);
        hi = cTable[static_cast<size_t>(c)] + occ(c, hi);
        if (lo >= hi)
            return SaRange{0, 0};
    }
    return SaRange{lo, hi};
}

int64_t
FmIndex::locate(int64_t r) const
{
    panic_if(r < 0 || r >= static_cast<int64_t>(bwt.size()),
             "locate rank out of range");
    int64_t steps = 0;
    while (sampledSa[static_cast<size_t>(r)] < 0) {
        r = lf(r);
        ++steps;
    }
    return sampledSa[static_cast<size_t>(r)] + steps;
}

int64_t
FmIndex::longestPrefixMatch(const BaseSeq &pattern, size_t offset,
                            SaRange &range) const
{
    panic_if(offset >= pattern.size(), "offset beyond pattern");
    // Match length is monotone: a longer prefix matches only if
    // every shorter one does, so binary search on the length.
    int64_t lo_len = 0;
    int64_t hi_len =
        static_cast<int64_t>(pattern.size() - offset);
    SaRange best{0, 0};
    while (lo_len < hi_len) {
        int64_t mid = (lo_len + hi_len + 1) / 2;
        SaRange r = find(pattern.substr(offset,
                                        static_cast<size_t>(mid)));
        if (!r.empty()) {
            lo_len = mid;
            best = r;
        } else {
            hi_len = mid - 1;
        }
    }
    range = best;
    return lo_len;
}

} // namespace iracc
