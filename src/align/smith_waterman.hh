/**
 * @file
 * Affine-gap pairwise alignment (Smith-Waterman / semi-global) with
 * traceback to a CIGAR -- the "seed extension" substrate of the
 * primary-alignment pipeline (paper Figure 2).
 *
 * The variant implemented is the one a read aligner actually needs:
 * glocal alignment where the whole read must align while the
 * reference window's flanks are free, so the read can land anywhere
 * inside the window.
 */

#ifndef IRACC_ALIGN_SMITH_WATERMAN_HH
#define IRACC_ALIGN_SMITH_WATERMAN_HH

#include <cstdint>

#include "genomics/base.hh"
#include "genomics/cigar.hh"

namespace iracc {

/** Alignment scoring parameters (BWA-MEM-like defaults). */
struct SwParams
{
    int32_t matchScore = 2;
    int32_t mismatchPenalty = 4;
    int32_t gapOpenPenalty = 6;
    int32_t gapExtendPenalty = 1;
};

/** Result of aligning a read into a reference window. */
struct SwAlignment
{
    int32_t score = 0;
    /** Offset of the alignment start within the window. */
    int64_t windowOffset = 0;
    Cigar cigar;
    /** DP cells evaluated (workload accounting). */
    uint64_t cellsComputed = 0;
};

/**
 * Align @p read into @p window (read fully consumed, window flanks
 * free).  @return the best-scoring alignment; score can be negative
 * for a hopeless window.
 */
SwAlignment smithWaterman(const BaseSeq &window, const BaseSeq &read,
                          const SwParams &params = {});

} // namespace iracc

#endif // IRACC_ALIGN_SMITH_WATERMAN_HH
