/**
 * @file
 * Seed-and-extend short-read aligner -- the BWA-MEM stand-in that
 * provides the primary-alignment pipeline stage of Figure 2.
 *
 * The pipeline mirrors the buckets of the paper's primary-alignment
 * breakdown (SMEM generation, suffix-array lookup, seed extension
 * via Smith-Waterman, output), and each stage is timed so the
 * Figure 2 bench can report the stage shares from a real run.
 */

#ifndef IRACC_ALIGN_ALIGNER_HH
#define IRACC_ALIGN_ALIGNER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "align/seed_index.hh"
#include "align/smith_waterman.hh"
#include "genomics/read.hh"
#include "genomics/reference.hh"

namespace iracc {

namespace obs {
struct Observability;
}

/** Per-stage wall-clock seconds of an alignment run. */
struct AlignerStageTimes
{
    double smemSeconds = 0.0;     ///< seed (maximal match) finding
    double lookupSeconds = 0.0;   ///< suffix-array position lookup
    double extendSeconds = 0.0;   ///< Smith-Waterman extension
    double outputSeconds = 0.0;   ///< record finalization
    double otherSeconds = 0.0;    ///< chaining and bookkeeping

    double
    total() const
    {
        return smemSeconds + lookupSeconds + extendSeconds +
               outputSeconds + otherSeconds;
    }
};

/** Aligner tuning knobs. */
struct AlignerParams
{
    uint32_t seedLength = 20;     ///< minimum useful seed length
    uint32_t seedStride = 16;     ///< query positions between seeds
    uint32_t maxSeedHits = 16;    ///< ignore ultra-repetitive seeds
    int64_t windowFlank = 24;     ///< SW window slack on each side
    SwParams swParams;

    /** Index substrate for the seeding stage (BWA uses FmIndex). */
    SeedIndexKind indexKind = SeedIndexKind::SuffixArray;
};

/**
 * Read aligner over one reference genome (one suffix array per
 * contig).
 */
class ReadAligner
{
  public:
    ReadAligner(const ReferenceGenome &ref, AlignerParams params = {});

    /**
     * Align one read; fills contig/pos/cigar/mapq.
     * @return true when a confident placement was found
     */
    bool alignRead(Read &read);

    /** Align a batch, accumulating stage times. */
    uint32_t alignAll(std::vector<Read> &reads);

    const AlignerStageTimes &stageTimes() const { return times; }
    void resetStageTimes() { times = AlignerStageTimes(); }

    /**
     * Attach (or detach, with nullptr) host observability: each
     * alignAll() batch then emits one "align batch" trace span,
     * samples the per-stage deltas into the
     * `align.stage.<stage>.seconds` histograms, and bumps the
     * `align.reads.total` / `align.reads.aligned` counters.  The
     * per-read hot path is untouched either way.
     */
    void setObservability(obs::Observability *o) { obsv = o; }

  private:
    const ReferenceGenome &ref;
    AlignerParams params;
    std::vector<std::unique_ptr<SeedIndex>> indexes;
    AlignerStageTimes times;
    obs::Observability *obsv = nullptr;
};

} // namespace iracc

#endif // IRACC_ALIGN_ALIGNER_HH
