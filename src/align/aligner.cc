#include "align/aligner.hh"

#include <algorithm>
#include <map>

#include "obs/obs.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace iracc {

ReadAligner::ReadAligner(const ReferenceGenome &r, AlignerParams p)
    : ref(r), params(p)
{
    fatal_if(params.seedLength < 8, "seed length too small");
    for (size_t c = 0; c < ref.numContigs(); ++c) {
        indexes.push_back(makeSeedIndex(
            params.indexKind,
            ref.contig(static_cast<int32_t>(c)).seq));
    }
}

bool
ReadAligner::alignRead(Read &read)
{
    const size_t rlen = read.bases.size();
    if (rlen < params.seedLength)
        return false;

    // --- SMEM generation: maximal exact seed matches -------------
    struct Seed
    {
        int32_t contig;
        size_t queryOffset;
        int64_t matchLen;
        SaRange range;
    };
    Timer t;
    std::vector<Seed> seeds;
    for (size_t c = 0; c < indexes.size(); ++c) {
        for (size_t off = 0; off + params.seedLength <= rlen;
             off += params.seedStride) {
            SaRange range;
            int64_t len = indexes[c]->longestPrefixMatch(read.bases,
                                                         off, range);
            if (len >= static_cast<int64_t>(params.seedLength) &&
                !range.empty() &&
                range.count() <= params.maxSeedHits) {
                seeds.push_back({static_cast<int32_t>(c), off, len,
                                 range});
            }
        }
    }
    times.smemSeconds += t.seconds();

    if (seeds.empty())
        return false;

    // --- Suffix-array lookup: hit positions, diagonal voting -----
    t.restart();
    // Diagonal = reference position minus query offset; the most
    // supported (contig, diagonal) bucket locates the read.
    std::map<std::pair<int32_t, int64_t>, int64_t> votes;
    for (const Seed &seed : seeds) {
        for (int64_t r = seed.range.lo; r < seed.range.hi; ++r) {
            int64_t pos = indexes[static_cast<size_t>(seed.contig)]
                              ->position(r);
            int64_t diag = pos -
                static_cast<int64_t>(seed.queryOffset);
            votes[{seed.contig, diag}] += seed.matchLen;
        }
    }
    int32_t best_contig = 0;
    int64_t best_diag = 0;
    int64_t best_votes = -1;
    for (const auto &[key, v] : votes) {
        if (v > best_votes) {
            best_votes = v;
            best_contig = key.first;
            best_diag = key.second;
        }
    }
    times.lookupSeconds += t.seconds();

    // --- Seed extension: banded Smith-Waterman around the hit ----
    t.restart();
    const Contig &ctg = ref.contig(best_contig);
    int64_t win_lo = std::max<int64_t>(0,
                                       best_diag - params.windowFlank);
    int64_t win_hi = std::min<int64_t>(
        ctg.length(),
        best_diag + static_cast<int64_t>(rlen) + params.windowFlank);
    if (win_hi - win_lo < static_cast<int64_t>(rlen)) {
        times.extendSeconds += t.seconds();
        return false;
    }
    BaseSeq window = ref.slice(best_contig, win_lo, win_hi);
    SwAlignment aln = smithWaterman(window, read.bases,
                                    params.swParams);
    times.extendSeconds += t.seconds();

    if (aln.score <= 0)
        return false;

    // --- Output: finalize the record ------------------------------
    t.restart();
    read.contig = best_contig;
    read.pos = win_lo + aln.windowOffset;
    read.cigar = aln.cigar;
    // Crude mapping quality: perfect score maps to 60.
    int32_t perfect = static_cast<int32_t>(rlen) *
                      params.swParams.matchScore;
    double frac = static_cast<double>(aln.score) /
                  static_cast<double>(perfect);
    read.mapq = static_cast<uint8_t>(
        std::clamp(frac * 60.0, 0.0, 60.0));
    read.assertValid();
    times.outputSeconds += t.seconds();
    return true;
}

uint32_t
ReadAligner::alignAll(std::vector<Read> &reads)
{
    Timer total;
    const AlignerStageTimes before = times;
    obs::ScopedSpan span(obsv, "align batch", "align");
    uint32_t aligned = 0;
    for (Read &read : reads)
        aligned += alignRead(read) ? 1 : 0;
    span.close();
    const double stage_delta = times.smemSeconds +
        times.lookupSeconds + times.extendSeconds +
        times.outputSeconds -
        (before.smemSeconds + before.lookupSeconds +
         before.extendSeconds + before.outputSeconds);
    double elapsed = total.seconds();
    if (elapsed > stage_delta)
        times.otherSeconds += elapsed - stage_delta;

    if (obsv && obsv->metrics) {
        obs::MetricsRegistry &reg = *obsv->metrics;
        reg.histogram("align.stage.smem.seconds")
            .sample(times.smemSeconds - before.smemSeconds);
        reg.histogram("align.stage.lookup.seconds")
            .sample(times.lookupSeconds - before.lookupSeconds);
        reg.histogram("align.stage.extend.seconds")
            .sample(times.extendSeconds - before.extendSeconds);
        reg.histogram("align.stage.output.seconds")
            .sample(times.outputSeconds - before.outputSeconds);
        reg.histogram("align.stage.other.seconds")
            .sample(times.otherSeconds - before.otherSeconds);
        reg.counter("align.reads.total").add(reads.size());
        reg.counter("align.reads.aligned").add(aligned);
    }
    return aligned;
}

} // namespace iracc
