#include "align/suffix_array.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace iracc {

SuffixArray::SuffixArray(const BaseSeq &t) : text(t)
{
    const int64_t n = static_cast<int64_t>(text.size());
    sa.resize(static_cast<size_t>(n));
    std::iota(sa.begin(), sa.end(), 0);
    if (n <= 1)
        return;

    // Prefix doubling: rank[i] is the rank of suffix i by its first
    // k characters; each round doubles k.
    std::vector<int64_t> rank(static_cast<size_t>(n));
    std::vector<int64_t> tmp(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i)
        rank[static_cast<size_t>(i)] =
            static_cast<unsigned char>(text[static_cast<size_t>(i)]);

    for (int64_t k = 1;; k *= 2) {
        auto cmp = [&](int64_t a, int64_t b) {
            if (rank[static_cast<size_t>(a)] !=
                rank[static_cast<size_t>(b)]) {
                return rank[static_cast<size_t>(a)] <
                       rank[static_cast<size_t>(b)];
            }
            int64_t ra = a + k < n ? rank[static_cast<size_t>(a + k)]
                                   : -1;
            int64_t rb = b + k < n ? rank[static_cast<size_t>(b + k)]
                                   : -1;
            return ra < rb;
        };
        std::sort(sa.begin(), sa.end(), cmp);

        tmp[static_cast<size_t>(sa[0])] = 0;
        for (int64_t i = 1; i < n; ++i) {
            tmp[static_cast<size_t>(sa[static_cast<size_t>(i)])] =
                tmp[static_cast<size_t>(sa[static_cast<size_t>(i - 1)])]
                + (cmp(sa[static_cast<size_t>(i - 1)],
                       sa[static_cast<size_t>(i)]) ? 1 : 0);
        }
        rank = tmp;
        if (rank[static_cast<size_t>(sa[static_cast<size_t>(n - 1)])] ==
            n - 1) {
            break; // all ranks distinct: fully sorted
        }
    }
}

int
SuffixArray::comparePattern(const BaseSeq &pattern, size_t plen,
                            int64_t r) const
{
    size_t pos = static_cast<size_t>(sa[static_cast<size_t>(r)]);
    size_t avail = text.size() - pos;
    size_t n = std::min(plen, avail);
    int c = std::char_traits<char>::compare(pattern.data(),
                                            text.data() + pos, n);
    if (c != 0)
        return c;
    // Pattern longer than the suffix: pattern sorts after.
    return plen > avail ? 1 : 0;
}

SaRange
SuffixArray::find(const BaseSeq &pattern) const
{
    panic_if(pattern.empty(), "empty pattern");
    SaRange range;
    // Lower bound: first suffix >= pattern.
    int64_t lo = 0, hi = size();
    while (lo < hi) {
        int64_t mid = (lo + hi) / 2;
        if (comparePattern(pattern, pattern.size(), mid) > 0)
            lo = mid + 1;
        else
            hi = mid;
    }
    range.lo = lo;
    // Upper bound: first suffix whose prefix exceeds pattern.
    hi = size();
    while (lo < hi) {
        int64_t mid = (lo + hi) / 2;
        // Compare only the first |pattern| characters: equal means
        // the suffix still starts with the pattern.
        size_t pos = static_cast<size_t>(sa[static_cast<size_t>(mid)]);
        size_t avail = text.size() - pos;
        size_t n = std::min(pattern.size(), avail);
        int c = std::char_traits<char>::compare(
            pattern.data(), text.data() + pos, n);
        bool starts_with = c == 0 && avail >= pattern.size();
        bool pattern_after = c > 0 || (c == 0 && !starts_with);
        if (pattern_after || starts_with)
            lo = mid + 1;
        else
            hi = mid;
    }
    range.hi = lo;
    if (range.hi < range.lo)
        range.hi = range.lo;
    return range;
}

int64_t
SuffixArray::longestPrefixMatch(const BaseSeq &pattern, size_t offset,
                                SaRange &range) const
{
    panic_if(offset >= pattern.size(), "offset beyond pattern");
    // Extend one character at a time, narrowing the current match
    // range in place: within [lo, hi) every suffix shares the
    // first `len` pattern characters, so the sub-range matching
    // the next character is found by binary search on the
    // (len+1)-th character of each suffix.  O(L log n) total.
    int64_t matched = 0;
    SaRange cur{0, size()};
    SaRange best{0, size()};

    for (size_t len = 0; offset + len < pattern.size(); ++len) {
        const char c = pattern[offset + len];
        // First suffix in [lo, hi) whose len-th character >= c.
        auto char_at = [&](int64_t r) -> int {
            size_t pos = static_cast<size_t>(
                             sa[static_cast<size_t>(r)]) + len;
            // Shorter suffixes sort first; treat end as -1.
            return pos < text.size()
                ? static_cast<unsigned char>(text[pos])
                : -1;
        };
        int64_t lo = cur.lo, hi = cur.hi;
        while (lo < hi) {
            int64_t mid = (lo + hi) / 2;
            if (char_at(mid) < static_cast<unsigned char>(c))
                lo = mid + 1;
            else
                hi = mid;
        }
        int64_t first = lo;
        lo = first;
        hi = cur.hi;
        while (lo < hi) {
            int64_t mid = (lo + hi) / 2;
            if (char_at(mid) <= static_cast<unsigned char>(c))
                lo = mid + 1;
            else
                hi = mid;
        }
        SaRange next{first, lo};
        if (next.empty())
            break;
        cur = next;
        best = next;
        matched = static_cast<int64_t>(len) + 1;
    }
    range = matched > 0 ? best : SaRange{0, 0};
    return matched;
}

} // namespace iracc
