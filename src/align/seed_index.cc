#include "align/seed_index.hh"

namespace iracc {

namespace {

class SuffixArrayIndex : public SeedIndex
{
  public:
    explicit SuffixArrayIndex(const BaseSeq &text) : sa(text) {}

    SaRange
    find(const BaseSeq &pattern) const override
    {
        return sa.find(pattern);
    }

    int64_t
    position(int64_t rank) const override
    {
        return sa.position(rank);
    }

    int64_t
    longestPrefixMatch(const BaseSeq &pattern, size_t offset,
                       SaRange &range) const override
    {
        return sa.longestPrefixMatch(pattern, offset, range);
    }

  private:
    SuffixArray sa;
};

class FmSeedIndex : public SeedIndex
{
  public:
    explicit FmSeedIndex(const BaseSeq &text) : fm(text) {}

    SaRange
    find(const BaseSeq &pattern) const override
    {
        return fm.find(pattern);
    }

    int64_t
    position(int64_t rank) const override
    {
        return fm.locate(rank);
    }

    int64_t
    longestPrefixMatch(const BaseSeq &pattern, size_t offset,
                       SaRange &range) const override
    {
        return fm.longestPrefixMatch(pattern, offset, range);
    }

  private:
    FmIndex fm;
};

} // anonymous namespace

std::unique_ptr<SeedIndex>
makeSeedIndex(SeedIndexKind kind, const BaseSeq &text)
{
    switch (kind) {
      case SeedIndexKind::SuffixArray:
        return std::make_unique<SuffixArrayIndex>(text);
      case SeedIndexKind::FmIndex:
        return std::make_unique<FmSeedIndex>(text);
    }
    return nullptr;
}

} // namespace iracc
