/**
 * @file
 * FM-index over the Burrows-Wheeler transform -- the index
 * structure BWA actually uses for the "suffix array lookup" stage
 * of the primary-alignment pipeline (paper Figure 2).
 *
 * Supports backward search (exact-match range queries in O(|P|)
 * rank operations) and position lookup through a sampled suffix
 * array with LF-mapping walks.  Functionally interchangeable with
 * the plain SuffixArray index (equivalence is property-tested);
 * the aligner can be configured to use either.
 */

#ifndef IRACC_ALIGN_FM_INDEX_HH
#define IRACC_ALIGN_FM_INDEX_HH

#include <array>
#include <cstdint>
#include <vector>

#include "align/suffix_array.hh"
#include "genomics/base.hh"

namespace iracc {

/** FM-index over one contig. */
class FmIndex
{
  public:
    /**
     * Build from the text (internally builds a suffix array; the
     * text is stored with a unique $ sentinel appended).
     */
    explicit FmIndex(const BaseSeq &text);

    /** Indexed text length (without the sentinel). */
    int64_t size() const { return textLen; }

    /**
     * Backward search for all exact occurrences of @p pattern.
     * @return half-open suffix-rank range (in this index's own
     * rank space, usable with locate())
     */
    SaRange find(const BaseSeq &pattern) const;

    /** Text position of the suffix with rank @p r. */
    int64_t locate(int64_t r) const;

    /**
     * Longest suffix of pattern[0..offset] ... analog of the
     * SMEM primitive: extends the match backward from the end of
     * the pattern slice starting at @p offset, returning the
     * longest prefix of pattern[offset..] found in the text.
     */
    int64_t longestPrefixMatch(const BaseSeq &pattern, size_t offset,
                               SaRange &range) const;

  private:
    /** Character alphabet: $=0, A=1, C=2, G=3, T=4, N=5. */
    static constexpr int kAlphabet = 6;

    static int charRank(char c);

    /** rank(c, i): occurrences of c in bwt[0, i). */
    int64_t occ(int c, int64_t i) const;

    /** LF mapping: row of bwt[i] in the first column. */
    int64_t lf(int64_t i) const;

    int64_t textLen;
    std::vector<uint8_t> bwt;           ///< BWT char ranks
    std::array<int64_t, kAlphabet + 1> cTable{};
    /** Sampled occ checkpoints every kOccSample positions. */
    static constexpr int64_t kOccSample = 64;
    std::vector<std::array<int64_t, kAlphabet>> occSamples;
    /** Suffix-array values sampled at text positions divisible by
     *  kSaSample (-1 = not sampled); locate() walks LF to one. */
    static constexpr int64_t kSaSample = 16;
    std::vector<int64_t> sampledSa;
};

} // namespace iracc

#endif // IRACC_ALIGN_FM_INDEX_HH
