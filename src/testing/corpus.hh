/**
 * @file
 * Self-contained repro cases for the differential harness.
 *
 * When tools/iracc_diff finds a cross-backend mismatch it minimizes
 * the workload (testing/differential.hh) and serializes the result
 * as one text file.  Committed cases live in tests/corpus/ and are
 * replayed by tests/differential_test.cc on every ctest run, so a
 * bug found by fuzzing stays fixed forever.
 *
 * Format (line-oriented, '#' comments):
 *
 *   # iracc-diff repro case v1
 *   kind pipeline | kernel | fault
 *   seed <generator seed, informational>
 *   variant <design point that diverged, informational>
 *   detail <diagnosis at capture time>
 *
 * fault cases add one line and then use the pipeline payload:
 *   faultplan <FaultPlan text form, see fault/fault.hh>
 *
 * pipeline payload:
 *   begin reference         FASTA, one contig per record
 *   end reference
 *   begin reads             SAM-lite lines (genomics/io.hh)
 *   end reads
 *
 * kernel payload:
 *   window <windowStart> <windowEnd>
 *   begin consensuses       one base string per line
 *   end consensuses
 *   begin reads             "<bases> <q0,q1,...>" per line; decimal
 *   end reads               qualities cover the full 0-255 range
 */

#ifndef IRACC_TESTING_CORPUS_HH
#define IRACC_TESTING_CORPUS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "genomics/read.hh"
#include "genomics/reference.hh"
#include "realign/consensus.hh"
#include "testing/differential.hh"

namespace iracc {
namespace difftest {

/** One serializable repro case. */
struct ReproCase
{
    /** "pipeline" (genome + reads), "kernel" (one target), or
     *  "fault" (genome + reads + fault plan). */
    std::string kind;

    /** Design point that diverged when the case was captured. */
    std::string variant;

    /** Diagnosis at capture time. */
    std::string detail;

    /** Generator seed the case came from. */
    uint64_t seed = 0;

    /** Pipeline payload (also used by fault cases). */
    ReferenceGenome reference;
    std::vector<Read> reads;

    /** Fault payload: FaultPlan text form (fault/fault.hh). */
    std::string faultPlan;

    /** Kernel payload. */
    IrTargetInput target;
};

/** Serialize a case (see file-format comment above). */
void writeReproCase(std::ostream &os, const ReproCase &repro);

/** Parse a case; fatal() on malformed input. */
ReproCase readReproCase(std::istream &is);

/**
 * Write a case into @p dir as repro-<kind>-seed<seed>-<n>.case,
 * picking the first unused n.  @return the path written.
 */
std::string saveReproCase(const ReproCase &repro,
                          const std::string &dir);

/** Load one case from a file path. */
ReproCase loadReproCase(const std::string &path);

/** Re-run the differential check a case captures. */
DiffResult replayReproCase(const ReproCase &repro);

/** Sorted *.case paths under @p dir (empty when none). */
std::vector<std::string> listCorpus(const std::string &dir);

} // namespace difftest
} // namespace iracc

#endif // IRACC_TESTING_CORPUS_HH
