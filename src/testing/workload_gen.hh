/**
 * @file
 * Randomized workload generation for the cross-backend differential
 * harness (tools/iracc_diff, tests/differential_test.cc).
 *
 * Two granularities:
 *
 *  - Kernel-level: seeded IrTargetInput sets that sweep the
 *    architectural limits in realign/limits.hh -- maximum read
 *    length, maximum reads and consensuses per target -- plus the
 *    degenerate corners the normal pipeline can never produce
 *    (zero reads, zero consensuses, every read longer than every
 *    consensus, a lone infeasible alternative).  These feed the
 *    kernel differential directly, bypassing target planning.
 *
 *  - Pipeline-level: small seeded genomes + read sets built through
 *    the regular workload synthesizer with seed-varied coverage,
 *    read length, and indel model, which exercise the full staged
 *    pipeline (Plan -> Prepare -> Execute -> Apply) of every
 *    backend variant.
 *
 * Everything is a pure function of the seed.
 */

#ifndef IRACC_TESTING_WORKLOAD_GEN_HH
#define IRACC_TESTING_WORKLOAD_GEN_HH

#include <cstdint>
#include <vector>

#include "core/workload.hh"
#include "realign/consensus.hh"

namespace iracc {
namespace difftest {

/**
 * Generate the kernel-level target set for one seed: a fixed
 * library of limit-boundary and degenerate cases followed by
 * randomized targets with boundary-biased dimensions.  Inputs may
 * intentionally violate marshalling limits (the differential skips
 * the accelerator model for those and checks the software kernel
 * plus the clean-rejection path instead).
 */
std::vector<IrTargetInput> makeKernelInputs(uint64_t seed);

/**
 * Synthesize a small pipeline-level genome workload for one seed:
 * 1-2 scaled contigs with seed-varied coverage, read length, and
 * indel parameters.
 */
GenomeWorkload makeDiffGenome(uint64_t seed);

} // namespace difftest
} // namespace iracc

#endif // IRACC_TESTING_WORKLOAD_GEN_HH
