/**
 * @file
 * Randomized workload generation for the cross-backend differential
 * harness (tools/iracc_diff, tests/differential_test.cc).
 *
 * Two granularities:
 *
 *  - Kernel-level: seeded IrTargetInput sets that sweep the
 *    architectural limits in realign/limits.hh -- maximum read
 *    length, maximum reads and consensuses per target -- plus the
 *    degenerate corners the normal pipeline can never produce
 *    (zero reads, zero consensuses, every read longer than every
 *    consensus, a lone infeasible alternative).  These feed the
 *    kernel differential directly, bypassing target planning.
 *
 *  - Pipeline-level: small seeded genomes + read sets built through
 *    the regular workload synthesizer with seed-varied coverage,
 *    read length, and indel model, which exercise the full staged
 *    pipeline (Plan -> Prepare -> Execute -> Apply) of every
 *    backend variant.
 *
 * Everything is a pure function of the seed.
 */

#ifndef IRACC_TESTING_WORKLOAD_GEN_HH
#define IRACC_TESTING_WORKLOAD_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/workload.hh"
#include "realign/consensus.hh"

namespace iracc {
namespace difftest {

/**
 * Generate the kernel-level target set for one seed: a fixed
 * library of limit-boundary and degenerate cases followed by
 * randomized targets with boundary-biased dimensions.  Inputs may
 * intentionally violate marshalling limits (the differential skips
 * the accelerator model for those and checks the software kernel
 * plus the clean-rejection path instead).
 */
std::vector<IrTargetInput> makeKernelInputs(uint64_t seed);

/**
 * Synthesize a small pipeline-level genome workload for one seed:
 * 1-2 scaled contigs with seed-varied coverage, read length, and
 * indel parameters.
 */
GenomeWorkload makeDiffGenome(uint64_t seed);

/**
 * Hostile-workload scenario profiles: the input shapes a deployed
 * realignment service sees that the benign default synthesizer
 * never produces.  Each is a named design point in the differential
 * harness (tools/iracc_diff --scenario-seeds, the ScenarioSweep in
 * tests/differential_test.cc) and a fault-soak workload; every
 * backend must stay bit-equal on all of them.
 */
enum class ScenarioProfile
{
    /** Long reads (architectural-limit length) with a degraded,
     *  fast-decaying quality model: high per-base error rates feed
     *  the WHD kernel near-saturating scores. */
    LongRead,

    /** Structural-variant dense: large indels, aggressively
     *  clustered, so IR targets grow many-consensus windows. */
    SvDense,

    /** Low-complexity reference built from homopolymer runs and
     *  short tandem repeats -- the regions where placement is
     *  maximally ambiguous and pruning tie-breaks matter. */
    LowComplexity,

    /** Tumor-normal pair: a somatic-heavy sample plus its matched
     *  normal (germline haplotype only) realigned together. */
    TumorNormal,

    /** Sample contaminated with ~12 % reads from a second donor
     *  carrying a disjoint variant set on the same reference. */
    Contaminated,
};

/** All profiles, in declaration order. */
std::vector<ScenarioProfile> allScenarioProfiles();

/** Stable CLI/corpus token, e.g. "long-read". */
const char *scenarioName(ScenarioProfile profile);

/** Parse a scenarioName token.  @return false on unknown names. */
bool parseScenario(const std::string &name, ScenarioProfile *out);

/**
 * One scenario instance: a reference plus a flattened, contig-
 * grouped read set (tumor + matched normal + contaminant reads
 * where the profile has them) -- directly consumable by
 * diffPipeline and by the streaming ingest path.
 */
struct ScenarioWorkload
{
    ReferenceGenome reference;
    std::vector<Read> reads;
};

/**
 * Build one scenario workload, deterministic in (profile, seed).
 * @p compact shrinks the genome/coverage to corpus-case size (the
 * committed tests/corpus/ cases replay every design point per
 * ctest run, so they must stay cheap).
 */
ScenarioWorkload makeScenarioWorkload(ScenarioProfile profile,
                                      uint64_t seed,
                                      bool compact = false);

} // namespace difftest
} // namespace iracc

#endif // IRACC_TESTING_WORKLOAD_GEN_HH
