#include "testing/workload_gen.hh"

#include <algorithm>

#include "realign/limits.hh"
#include "util/logging.hh"

namespace iracc {
namespace difftest {

namespace {

/** Stream tags keeping kernel and pipeline generation independent. */
constexpr uint64_t kKernelStream = 0xD1FFC0DEull;
constexpr uint64_t kPipelineStream = 0xD1FF6E02ull;

/**
 * Per-target worst-case comparison budget.  Randomized dimensions
 * are rejected above this so one seed's kernel sweep stays in the
 * tens of milliseconds even with six kernel configurations run per
 * target.
 */
constexpr uint64_t kComparisonBudget = 2'000'000;

BaseSeq
randomBases(Rng &rng, size_t len)
{
    static const char alphabet[4] = {'A', 'C', 'G', 'T'};
    BaseSeq out;
    out.reserve(len);
    for (size_t i = 0; i < len; ++i)
        out.push_back(alphabet[rng.below(4)]);
    return out;
}

/** Boundary-biased quality: extremes are where sentinel and
 *  saturation bugs live, so half the draws land on them. */
uint8_t
randomQual(Rng &rng)
{
    switch (rng.below(6)) {
      case 0: return 0;
      case 1: return 1;
      case 2: return 254;
      case 3: return 255;
      default:
        return static_cast<uint8_t>(rng.below(64));
    }
}

QualSeq
randomQuals(Rng &rng, size_t len)
{
    QualSeq out;
    out.reserve(len);
    for (size_t i = 0; i < len; ++i)
        out.push_back(randomQual(rng));
    return out;
}

/** Boundary-biased dimension draw over [lo, hi]. */
size_t
boundaryPick(Rng &rng, size_t lo, size_t hi,
             std::initializer_list<size_t> edges)
{
    if (rng.chance(0.5)) {
        size_t n = edges.size();
        if (n > 0) {
            size_t v = *(edges.begin() + rng.below(n));
            return std::clamp(v, lo, hi);
        }
    }
    return static_cast<size_t>(
        rng.range(static_cast<int64_t>(lo), static_cast<int64_t>(hi)));
}

/** Skeleton with window metadata and placeholder events filled. */
IrTargetInput
makeSkeleton(Rng &rng, size_t window_len)
{
    IrTargetInput input;
    input.windowStart = rng.below(5000);
    input.windowEnd = input.windowStart +
                      static_cast<int64_t>(window_len);
    input.target.start = input.windowStart;
    input.target.end = input.windowEnd;
    return input;
}

void
addConsensus(IrTargetInput &input, BaseSeq cons)
{
    input.consensuses.push_back(std::move(cons));
    input.events.emplace_back();
}

/**
 * Add a read.  70 % of reads are sampled from a random consensus at
 * a random offset with a few point errors (realistic placements
 * that exercise pruning); the rest are pure noise (worst case for
 * the minimum search).
 */
void
addRead(IrTargetInput &input, Rng &rng, size_t len)
{
    BaseSeq bases;
    if (!input.consensuses.empty() && rng.chance(0.7)) {
        const BaseSeq &cons =
            input.consensuses[rng.below(input.consensuses.size())];
        if (cons.size() >= len) {
            size_t k = rng.below(cons.size() - len + 1);
            bases = cons.substr(k, len);
            size_t errors = rng.below(1 + len / 16);
            for (size_t e = 0; e < errors; ++e) {
                bases[rng.below(len)] =
                    "ACGT"[rng.below(4)];
            }
        }
    }
    if (bases.empty())
        bases = randomBases(rng, len);
    input.readIndices.push_back(
        static_cast<uint32_t>(input.readIndices.size()));
    input.readQuals.push_back(randomQuals(rng, len));
    input.readBases.push_back(std::move(bases));
}

/** Drop reads until the target fits the comparison budget. */
void
enforceBudget(IrTargetInput &input)
{
    while (input.numReads() > 0 &&
           input.worstCaseComparisons() > kComparisonBudget) {
        input.readBases.pop_back();
        input.readQuals.pop_back();
        input.readIndices.pop_back();
    }
}

/**
 * The deterministic boundary library: the degenerate and
 * at-the-limit corners every seed must cover regardless of what
 * the randomized draws produce.
 */
std::vector<IrTargetInput>
boundaryLibrary(Rng &rng)
{
    std::vector<IrTargetInput> out;

    // Zero consensuses with reads: rejected by marshalling, must be
    // a clean software no-op.
    {
        IrTargetInput t = makeSkeleton(rng, 0);
        addRead(t, rng, 40);
        addRead(t, rng, 40);
        out.push_back(std::move(t));
    }

    // Zero reads, several consensuses.
    {
        IrTargetInput t = makeSkeleton(rng, 80);
        for (int i = 0; i < 3; ++i)
            addConsensus(t, randomBases(rng, 80));
        out.push_back(std::move(t));
    }

    // Reference only (no alternative consensus to pick).
    {
        IrTargetInput t = makeSkeleton(rng, 120);
        addConsensus(t, randomBases(rng, 120));
        for (int j = 0; j < 6; ++j)
            addRead(t, rng, 30 + rng.below(60));
        out.push_back(std::move(t));
    }

    // Every read longer than every consensus: no feasible
    // placement anywhere, must be a no-op in every backend.
    {
        IrTargetInput t = makeSkeleton(rng, 40);
        addConsensus(t, randomBases(rng, 40));
        addConsensus(t, randomBases(rng, 32));
        for (int j = 0; j < 4; ++j)
            addRead(t, rng, 41 + rng.below(60));
        out.push_back(std::move(t));
    }

    // Mixed feasibility: consensus 1 shorter than every read (an
    // infeasible alternative), consensus 2 a genuine candidate.
    {
        IrTargetInput t = makeSkeleton(rng, 100);
        addConsensus(t, randomBases(rng, 100));
        addConsensus(t, randomBases(rng, 20));
        BaseSeq alt = randomBases(rng, 100);
        addConsensus(t, alt);
        for (int j = 0; j < 5; ++j) {
            size_t len = 30 + rng.below(40);
            size_t k = rng.below(alt.size() - len + 1);
            t.readIndices.push_back(
                static_cast<uint32_t>(t.readIndices.size()));
            t.readBases.push_back(alt.substr(k, len));
            t.readQuals.push_back(randomQuals(rng, len));
        }
        out.push_back(std::move(t));
    }

    // Full occupancy at small lengths: kMaxConsensuses x kMaxReads.
    {
        IrTargetInput t = makeSkeleton(rng, 48);
        for (uint32_t i = 0; i < kMaxConsensuses; ++i)
            addConsensus(t, randomBases(rng, 40 + rng.below(9)));
        for (uint32_t j = 0; j < kMaxReads; ++j)
            addRead(t, rng, 8 + rng.below(24));
        out.push_back(std::move(t));
    }

    // Maximum lengths: a kMaxConsensusLen window with reads at
    // exactly kMaxReadLen (including one read == consensus length
    // after the stride, i.e. the single-offset case).
    {
        IrTargetInput t = makeSkeleton(rng, kMaxConsensusLen);
        addConsensus(t, randomBases(rng, kMaxConsensusLen));
        addConsensus(t, randomBases(rng, kMaxReadLen));
        addRead(t, rng, kMaxReadLen);
        addRead(t, rng, kMaxReadLen);
        out.push_back(std::move(t));
    }

    // Saturation stress: maximum-quality all-mismatch reads (the
    // WHD accumulator's high end; full saturation is covered by
    // whd_test, this keeps the differential on the same path).
    {
        IrTargetInput t = makeSkeleton(rng, 300);
        addConsensus(t, BaseSeq(300, 'A'));
        addConsensus(t, BaseSeq(280, 'A'));
        for (int j = 0; j < 3; ++j) {
            size_t len = 100 + rng.below(100);
            t.readIndices.push_back(
                static_cast<uint32_t>(t.readIndices.size()));
            t.readBases.push_back(BaseSeq(len, 'C'));
            t.readQuals.push_back(QualSeq(len, 255));
        }
        out.push_back(std::move(t));
    }

    return out;
}

IrTargetInput
randomTarget(Rng &rng)
{
    size_t num_cons =
        boundaryPick(rng, 0, kMaxConsensuses,
                     {0, 1, 2, kMaxConsensuses - 1, kMaxConsensuses});
    size_t cons_len =
        boundaryPick(rng, 16, 384, {16, 17, 64, 255, 256, 257, 384});
    IrTargetInput t = makeSkeleton(rng, cons_len);
    for (size_t i = 0; i < num_cons; ++i) {
        // Alternative consensuses vary in length like real indel
        // candidates; occasionally degenerate to shorter than every
        // read.
        size_t len = i == 0 ? cons_len
                            : boundaryPick(rng, 8, cons_len + 24,
                                           {8, cons_len - 1, cons_len,
                                            cons_len + 24});
        addConsensus(t, randomBases(rng, len));
    }
    size_t num_reads =
        boundaryPick(rng, 0, kMaxReads, {0, 1, 2, 31, kMaxReads});
    for (size_t j = 0; j < num_reads; ++j) {
        size_t len = boundaryPick(
            rng, 1, std::min<size_t>(kMaxReadLen, cons_len + 8),
            {1, 2, 16, cons_len - 1, cons_len, cons_len + 8,
             kMaxReadLen});
        addRead(t, rng, len);
    }
    enforceBudget(t);
    return t;
}

} // anonymous namespace

std::vector<IrTargetInput>
makeKernelInputs(uint64_t seed)
{
    Rng rng = Rng::stream(kKernelStream, seed);
    std::vector<IrTargetInput> out = boundaryLibrary(rng);
    const size_t randomized = 6;
    for (size_t i = 0; i < randomized; ++i)
        out.push_back(randomTarget(rng));
    return out;
}

namespace {

/** Stream tag keeping scenario generation independent of the
 *  kernel and pipeline streams. */
constexpr uint64_t kScenarioStream = 0xD1FF5CE2ull;

/** Flatten a workload into one contig-grouped read vector:
 *  per chromosome, tumor/sample reads then the matched normal. */
std::vector<Read>
flattenReads(GenomeWorkload &wl)
{
    std::vector<Read> reads;
    for (ChromosomeWorkload &chrom : wl.chromosomes) {
        for (Read &r : chrom.reads)
            reads.push_back(std::move(r));
        for (Read &r : chrom.normalReads)
            reads.push_back(std::move(r));
    }
    return reads;
}

/** Shared sizing: one scaled Ch22 (or a compact corpus-sized one). */
WorkloadParams
scenarioBaseParams(uint64_t seed, bool compact)
{
    WorkloadParams p;
    p.seed = 0x5CE2ADA12878ull ^ (seed * 0x9E3779B97F4A7C15ull);
    p.scaleDivisor = 20000;
    p.minContigLength = compact ? 6000 : 15000;
    p.chromosomes = {22};
    p.coverage = compact ? 4.0 : 8.0;
    return p;
}

/**
 * Low-complexity reference: homopolymer runs, dinucleotide and
 * triplet tandem repeats, separated by short random spacers.
 */
BaseSeq
lowComplexitySequence(Rng &rng, int64_t length)
{
    static const char alphabet[4] = {'A', 'C', 'G', 'T'};
    BaseSeq seq;
    seq.reserve(static_cast<size_t>(length));
    while (static_cast<int64_t>(seq.size()) < length) {
        switch (rng.below(4)) {
          case 0: { // homopolymer run
            char b = alphabet[rng.below(4)];
            size_t run = 20 + rng.below(60);
            seq.append(run, b);
            break;
          }
          case 1: { // dinucleotide repeat
            char a = alphabet[rng.below(4)];
            char b = alphabet[rng.below(4)];
            size_t units = 12 + rng.below(30);
            for (size_t i = 0; i < units; ++i) {
                seq.push_back(a);
                seq.push_back(b);
            }
            break;
          }
          case 2: { // short tandem repeat (3-6 bp unit)
            size_t unit_len = 3 + rng.below(4);
            BaseSeq unit;
            for (size_t i = 0; i < unit_len; ++i)
                unit.push_back(alphabet[rng.below(4)]);
            size_t units = 8 + rng.below(20);
            for (size_t i = 0; i < units; ++i)
                seq += unit;
            break;
          }
          default: { // random spacer
            size_t run = 40 + rng.below(120);
            for (size_t i = 0; i < run; ++i)
                seq.push_back(alphabet[rng.below(4)]);
            break;
          }
        }
    }
    seq.resize(static_cast<size_t>(length));
    return seq;
}

ScenarioWorkload
makeLowComplexity(uint64_t seed, bool compact)
{
    Rng rng = Rng::stream(kScenarioStream, seed ^ 0x10c0ull);
    ScenarioWorkload out;
    const int64_t length = compact ? 6000 : 15000;
    int32_t contig = out.reference.addContig(
        "Ch22", lowComplexitySequence(rng, length));

    VariantGenParams vp;
    vp.insRate = 1.2e-3;
    vp.delRate = 1.2e-3;
    vp.maxIndelLen = 12;
    vp.clusterProb = 0.5;
    std::vector<Variant> truth = generateVariants(
        out.reference.contig(contig).seq, contig, vp, rng);

    ReadSimParams sim;
    sim.readLength = 100;
    sim.coverage = compact ? 4.0 : 8.0;
    // Repeats make placement ambiguous even at normal quality;
    // a slightly degraded model adds realistic noise on top.
    sim.qualMean = 28.0;
    sim.indelShiftProb = 0.5;
    ReadSimulator simulator(sim, rng.next());
    out.reads =
        simulator.simulateContig(out.reference, contig, truth).reads;
    return out;
}

ScenarioWorkload
makeContaminated(uint64_t seed, bool compact)
{
    WorkloadParams p = scenarioBaseParams(seed, compact);
    p.variants.insRate = 1e-3;
    p.variants.delRate = 1e-3;
    p.variants.maxIndelLen = 14;
    GenomeWorkload wl = buildWorkload(p);

    ScenarioWorkload out;
    out.reads = flattenReads(wl);
    out.reference = std::move(wl.reference);

    // The contaminant: a second donor on the same reference with
    // its own (disjoint-by-construction) variant stream, at ~12 %
    // of the sample's depth.  Its reads carry germline-looking
    // alleles the main donor does not have -- exactly the
    // low-allele-fraction noise a contaminated library shows.
    Rng crng = Rng::stream(kScenarioStream, seed ^ 0xC047ull);
    for (ChromosomeWorkload &chrom : wl.chromosomes) {
        VariantGenParams vp = p.variants;
        std::vector<Variant> donor2 = generateVariants(
            out.reference.contig(chrom.contig).seq, chrom.contig,
            vp, crng);
        ReadSimParams sim = p.readSim;
        sim.coverage = p.coverage * 0.12;
        ReadSimulator simulator(sim, crng.next());
        SimulatedReads sr = simulator.simulateContig(
            out.reference, chrom.contig, donor2);
        for (Read &r : sr.reads) {
            r.name = "C" + r.name;
            out.reads.push_back(std::move(r));
        }
    }
    return out;
}

} // anonymous namespace

std::vector<ScenarioProfile>
allScenarioProfiles()
{
    return {ScenarioProfile::LongRead, ScenarioProfile::SvDense,
            ScenarioProfile::LowComplexity,
            ScenarioProfile::TumorNormal,
            ScenarioProfile::Contaminated};
}

const char *
scenarioName(ScenarioProfile profile)
{
    switch (profile) {
      case ScenarioProfile::LongRead:      return "long-read";
      case ScenarioProfile::SvDense:       return "sv-dense";
      case ScenarioProfile::LowComplexity: return "low-complexity";
      case ScenarioProfile::TumorNormal:   return "tumor-normal";
      case ScenarioProfile::Contaminated:  return "contaminated";
    }
    panic("invalid ScenarioProfile %d", static_cast<int>(profile));
}

bool
parseScenario(const std::string &name, ScenarioProfile *out)
{
    for (ScenarioProfile p : allScenarioProfiles()) {
        if (name == scenarioName(p)) {
            *out = p;
            return true;
        }
    }
    return false;
}

ScenarioWorkload
makeScenarioWorkload(ScenarioProfile profile, uint64_t seed,
                     bool compact)
{
    switch (profile) {
      case ScenarioProfile::LongRead: {
        WorkloadParams p = scenarioBaseParams(seed, compact);
        // kMaxReadLen-bounded long reads with a fast-decaying,
        // jittery quality model: high per-base error rates.
        p.readSim.readLength = 250;
        p.readSim.qualMean = 16.0;
        p.readSim.qualDecay = 14.0;
        p.readSim.qualJitter = 6.0;
        p.readSim.indelShiftProb = 0.5;
        p.variants.insRate = 1e-3;
        p.variants.delRate = 1e-3;
        p.variants.maxIndelLen = 18;
        GenomeWorkload wl = buildWorkload(p);
        ScenarioWorkload out;
        out.reads = flattenReads(wl);
        out.reference = std::move(wl.reference);
        return out;
      }
      case ScenarioProfile::SvDense: {
        WorkloadParams p = scenarioBaseParams(seed, compact);
        p.variants.insRate = 3e-3;
        p.variants.delRate = 3e-3;
        p.variants.maxIndelLen = 40;
        p.variants.minIndelSpacing = 120;
        p.variants.clusterProb = 0.8;
        p.variants.clusterMaxExtra = 4;
        p.variants.clusterSpacingMax = 200;
        GenomeWorkload wl = buildWorkload(p);
        ScenarioWorkload out;
        out.reads = flattenReads(wl);
        out.reference = std::move(wl.reference);
        return out;
      }
      case ScenarioProfile::LowComplexity:
        return makeLowComplexity(seed, compact);
      case ScenarioProfile::TumorNormal: {
        WorkloadParams p = scenarioBaseParams(seed, compact);
        p.normalCoverage = compact ? 3.0 : 6.0;
        p.variants.somaticFraction = 0.85;
        p.variants.insRate = 1.5e-3;
        p.variants.delRate = 1.5e-3;
        p.variants.maxIndelLen = 16;
        GenomeWorkload wl = buildWorkload(p);
        ScenarioWorkload out;
        out.reads = flattenReads(wl);
        out.reference = std::move(wl.reference);
        return out;
      }
      case ScenarioProfile::Contaminated:
        return makeContaminated(seed, compact);
    }
    panic("invalid ScenarioProfile %d", static_cast<int>(profile));
}

GenomeWorkload
makeDiffGenome(uint64_t seed)
{
    Rng rng = Rng::stream(kPipelineStream, seed);
    WorkloadParams p;
    p.seed = 0xD1FFADA12878ull ^
             (seed * 0x9E3779B97F4A7C15ull);
    // 1-2 small contigs so eight backend variants (four of them
    // cycle-level simulations) stay affordable per seed.
    p.scaleDivisor = 20000;
    p.minContigLength = 15000;
    p.chromosomes = rng.chance(0.5) ? std::vector<int>{22}
                                    : std::vector<int>{21, 22};
    p.coverage = 6.0 + static_cast<double>(rng.below(8));
    static const int32_t read_lens[] = {36, 75, 100, 150, 250};
    p.readSim.readLength = read_lens[rng.below(5)];
    p.variants.insRate = 8e-4;
    p.variants.delRate = 8e-4;
    p.variants.maxIndelLen =
        static_cast<int32_t>(4 + rng.below(21));
    p.variants.clusterProb = 0.4;
    return buildWorkload(p);
}

} // namespace difftest
} // namespace iracc
