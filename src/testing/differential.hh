/**
 * @file
 * Cross-backend differential checks: every registered backend
 * design point must produce bit-identical results on the same
 * workload.
 *
 * Kernel level, one IrTargetInput at a time:
 *   - software minWhd with pruning == without pruning (grid and
 *     offsets bit-equal), counters satisfy
 *     comparisons <= comparisonsUnpruned;
 *   - scoreAndSelect never picks a consensus with no feasible
 *     placement; degenerate targets are no-ops;
 *   - the accelerator datapath model (irCompute) at widths {1, 32}
 *     x pruning {off, on} matches the software decision exactly
 *     (picked consensus, realign flags, new positions);
 *   - at scalar width the datapath's WhdStats equal the software
 *     kernel's bit for bit;
 *   - inputs that violate the architectural limits are rejected
 *     with a clean limitViolation() diagnostic (never marshalled).
 *
 * Pipeline level, one genome workload at a time: every
 * differentialVariants() design point ({software, accelerated} x
 * {prune off, on} x job threads) realigns a copy of the same read
 * set; realigned alignments (position + CIGAR per read), realign
 * statistics, and downstream variant calls must all equal the
 * oracle's (the unpruned single-job software variant).
 *
 * On mismatch the harness minimizes: greedy removal of contigs,
 * then read chunks (pipeline) or reads/consensuses (kernel) while
 * the divergence persists, producing the small repro the corpus
 * stores (see testing/corpus.hh).
 */

#ifndef IRACC_TESTING_DIFFERENTIAL_HH
#define IRACC_TESTING_DIFFERENTIAL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/realigner_api.hh"
#include "genomics/read.hh"
#include "genomics/reference.hh"
#include "realign/consensus.hh"

namespace iracc {
namespace difftest {

/** Outcome of one differential check. */
struct DiffResult
{
    bool ok = true;

    /** Design point that diverged (empty when ok). */
    std::string variant;

    /** Human-readable description of the first divergence. */
    std::string detail;

    static DiffResult
    fail(std::string variant, std::string detail)
    {
        DiffResult r;
        r.ok = false;
        r.variant = std::move(variant);
        r.detail = std::move(detail);
        return r;
    }
};

/** Kernel-level differential over one target input. */
DiffResult diffKernelInput(const IrTargetInput &input);

/**
 * Kernel-level differential over every generated input of a seed.
 * On failure, @p failed_index (if non-null) receives the index of
 * the first diverging input within makeKernelInputs(seed).
 */
DiffResult diffKernelSeed(uint64_t seed,
                          size_t *failed_index = nullptr);

/**
 * Pipeline-level differential: realign a copy of @p reads with
 * every variant and compare alignments, statistics, and variant
 * calls against the first variant (the oracle).
 */
DiffResult diffPipeline(
    const ReferenceGenome &ref, const std::vector<Read> &reads,
    const std::vector<BackendVariant> &variants =
        differentialVariants());

/** Pipeline differential over the generated genome of a seed. */
DiffResult diffPipelineSeed(uint64_t seed);

/**
 * Greedy repro minimization for a pipeline mismatch: drop whole
 * contigs, then binary-shrinking read chunks, then single reads,
 * keeping each removal only while @p check still reports a
 * mismatch.  @return the minimized read set (the input set when it
 * no longer fails).
 */
std::vector<Read> minimizeReads(
    const ReferenceGenome &ref, std::vector<Read> reads,
    const std::function<DiffResult(const ReferenceGenome &,
                                   const std::vector<Read> &)> &check);

/**
 * Greedy repro minimization for a kernel mismatch: drop reads and
 * non-reference consensuses one at a time while @p check keeps
 * failing.
 */
IrTargetInput minimizeKernelInput(
    IrTargetInput input,
    const std::function<DiffResult(const IrTargetInput &)> &check);

} // namespace difftest
} // namespace iracc

#endif // IRACC_TESTING_DIFFERENTIAL_HH
