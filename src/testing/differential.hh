/**
 * @file
 * Cross-backend differential checks: every registered backend
 * design point must produce bit-identical results on the same
 * workload.
 *
 * Kernel level, one IrTargetInput at a time:
 *   - software minWhd with pruning == without pruning (grid and
 *     offsets bit-equal), counters satisfy
 *     comparisons <= comparisonsUnpruned;
 *   - scoreAndSelect never picks a consensus with no feasible
 *     placement; degenerate targets are no-ops;
 *   - the accelerator datapath model (irCompute) at widths {1, 32}
 *     x pruning {off, on} matches the software decision exactly
 *     (picked consensus, realign flags, new positions);
 *   - at scalar width the datapath's WhdStats equal the software
 *     kernel's bit for bit;
 *   - inputs that violate the architectural limits are rejected
 *     with a clean limitViolation() diagnostic (never marshalled).
 *
 * Pipeline level, one genome workload at a time: every
 * differentialVariants() design point ({software, accelerated} x
 * {prune off, on} x job threads) realigns a copy of the same read
 * set; realigned alignments (position + CIGAR per read), realign
 * statistics, and downstream variant calls must all equal the
 * oracle's (the unpruned single-job software variant).
 *
 * Fault level, one genome workload plus one FaultPlan at a time:
 * the hardened execution path (host/hardened_executor.hh) realigns
 * under injected hardware faults and must still produce the plain
 * accelerated backend's bit-exact output -- recovery may fire (that
 * is the point) but results must not change.  With an empty plan
 * the hardened path itself must be invisible: bit-identical output
 * and not a single recovery counter ticking.
 *
 * On mismatch the harness minimizes: greedy removal of contigs,
 * then read chunks (pipeline) or reads/consensuses (kernel) while
 * the divergence persists, producing the small repro the corpus
 * stores (see testing/corpus.hh).
 */

#ifndef IRACC_TESTING_DIFFERENTIAL_HH
#define IRACC_TESTING_DIFFERENTIAL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/realigner_api.hh"
#include "fault/fault.hh"
#include "genomics/read.hh"
#include "genomics/reference.hh"
#include "realign/consensus.hh"
#include "testing/workload_gen.hh"

namespace iracc {
namespace difftest {

/** Outcome of one differential check. */
struct DiffResult
{
    bool ok = true;

    /** Design point that diverged (empty when ok). */
    std::string variant;

    /** Human-readable description of the first divergence. */
    std::string detail;

    static DiffResult
    fail(std::string variant, std::string detail)
    {
        DiffResult r;
        r.ok = false;
        r.variant = std::move(variant);
        r.detail = std::move(detail);
        return r;
    }
};

/** Kernel-level differential over one target input. */
DiffResult diffKernelInput(const IrTargetInput &input);

/**
 * Kernel-level differential over every generated input of a seed.
 * On failure, @p failed_index (if non-null) receives the index of
 * the first diverging input within makeKernelInputs(seed).
 */
DiffResult diffKernelSeed(uint64_t seed,
                          size_t *failed_index = nullptr);

/**
 * Pipeline-level differential: realign a copy of @p reads with
 * every variant and compare alignments, statistics, and variant
 * calls against the first variant (the oracle).
 */
DiffResult diffPipeline(
    const ReferenceGenome &ref, const std::vector<Read> &reads,
    const std::vector<BackendVariant> &variants =
        differentialVariants());

/** Pipeline differential over the generated genome of a seed. */
DiffResult diffPipelineSeed(uint64_t seed);

/** One pipeline run's complete observable outcome. */
struct PipelineOutcome
{
    std::vector<std::string> alignments; ///< per read, input order
    RealignStats stats;
    std::vector<std::string> calls;      ///< variant calls, genome order

    /** Hardened-path health (zero / Ok for plain backends). */
    RecoveryStats recovery;
    RunStatus status = RunStatus::Ok;
};

/**
 * Run one backend over a genome workload (a private copy of
 * @p reads) and capture everything a differential can compare.
 */
PipelineOutcome runBackendPipeline(
    std::unique_ptr<const RealignerBackend> backend,
    uint32_t job_threads, const ReferenceGenome &ref,
    std::vector<Read> reads);

/**
 * Hardened-path transparency property: with an empty FaultPlan the
 * hardened execution path must be bit-identical to the plain
 * accelerated path on every accelerated design point of
 * @p variants -- same alignments, same statistics (WhdStats bit for
 * bit), same variant calls, RunStatus::Ok, and every recovery
 * counter zero.
 */
DiffResult diffHardenedPipeline(
    const ReferenceGenome &ref, const std::vector<Read> &reads,
    const std::vector<BackendVariant> &variants =
        differentialVariants());

/**
 * Fault differential: realign through the hardened path with
 * @p plan attached to the simulator's fault hooks and compare bit
 * for bit against the plain accelerated backend's fault-free run.
 * The default HardenPolicy must absorb every injectable fault, so
 * a run that reports RunStatus::Failed is itself a divergence.
 * With @p cards > 1 the hardened subject runs on a multi-card
 * fleet (@p plan attached to card 0), exercising card-granular
 * containment and migration under the same bit-exactness bar.
 */
DiffResult diffFaultPlan(const ReferenceGenome &ref,
                         const std::vector<Read> &reads,
                         const FaultPlan &plan, uint32_t cards = 1,
                         bool stealing = true);

/**
 * Fault differential over the generated genome of a seed under
 * FaultPlan::random(seed) (tools/iracc_diff --fault-seeds).
 */
DiffResult diffFaultSeed(uint64_t seed, uint32_t cards = 1,
                         bool stealing = true);

/**
 * Scenario differential: the full cross-backend pipeline check
 * (every differentialVariants design point) plus the hardened
 * fault-free transparency check, over one hostile-workload
 * scenario profile (workload_gen.hh).  This is what makes each
 * profile a named design point of the harness
 * (tools/iracc_diff --scenario-seeds).
 */
DiffResult diffScenarioSeed(ScenarioProfile profile, uint64_t seed);

/**
 * Scenario fault soak: realign one scenario workload through the
 * hardened path under FaultPlan::random(seed) and require the
 * plain accelerated backend's bit-exact output
 * (tools/iracc_diff --scenario-fault-seeds).
 */
DiffResult diffScenarioFaultSeed(ScenarioProfile profile,
                                 uint64_t seed, uint32_t cards = 1,
                                 bool stealing = true);

/**
 * Streaming-ingest differential: serialize @p reads as SAM-lite,
 * realign them again through SamLiteBatchSource +
 * RealignSession::runStreamed, and require byte-identical SAM-lite
 * output and a fully identical RealignStats against the in-memory
 * run of the same design point -- for every variant in
 * @p variants (the default matrix spans 1 and 4 job threads).
 * This is the executable form of the streaming bit-equality
 * contract (docs/TESTING.md).
 */
DiffResult diffStreamingIngest(
    const ReferenceGenome &ref, const std::vector<Read> &reads,
    const std::vector<BackendVariant> &variants =
        differentialVariants());

/** Streaming-ingest differential over the genome of a seed. */
DiffResult diffStreamingIngestSeed(uint64_t seed);

/**
 * Greedy repro minimization for a pipeline mismatch: drop whole
 * contigs, then binary-shrinking read chunks, then single reads,
 * keeping each removal only while @p check still reports a
 * mismatch.  @return the minimized read set (the input set when it
 * no longer fails).
 */
std::vector<Read> minimizeReads(
    const ReferenceGenome &ref, std::vector<Read> reads,
    const std::function<DiffResult(const ReferenceGenome &,
                                   const std::vector<Read> &)> &check);

/**
 * Greedy repro minimization for a kernel mismatch: drop reads and
 * non-reference consensuses one at a time while @p check keeps
 * failing.
 */
IrTargetInput minimizeKernelInput(
    IrTargetInput input,
    const std::function<DiffResult(const IrTargetInput &)> &check);

} // namespace difftest
} // namespace iracc

#endif // IRACC_TESTING_DIFFERENTIAL_HH
