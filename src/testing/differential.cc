#include "testing/differential.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <set>
#include <sstream>

#include "accel/ir_compute.hh"
#include "core/realign_job.hh"
#include "genomics/io.hh"
#include "realign/marshal.hh"
#include "realign/score.hh"
#include "realign/whd.hh"
#include "realign/whd_simd.hh"
#include "testing/workload_gen.hh"
#include "util/logging.hh"
#include "variant/caller.hh"

namespace iracc {
namespace difftest {

namespace {

std::string
fmt(const char *format, ...)
{
    char buf[256];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    return std::string(buf);
}

bool
statsEqual(const WhdStats &a, const WhdStats &b)
{
    return a.comparisons == b.comparisons &&
           a.comparisonsUnpruned == b.comparisonsUnpruned &&
           a.offsetsEvaluated == b.offsetsEvaluated &&
           a.offsetsPruned == b.offsetsPruned;
}

std::string
statsString(const WhdStats &s)
{
    return fmt("cmp=%llu unpruned=%llu offsets=%llu pruned=%llu",
               static_cast<unsigned long long>(s.comparisons),
               static_cast<unsigned long long>(s.comparisonsUnpruned),
               static_cast<unsigned long long>(s.offsetsEvaluated),
               static_cast<unsigned long long>(s.offsetsPruned));
}

/**
 * Semantic sanity of one software decision: a picked consensus must
 * have placement evidence, a fully-infeasible target must be a
 * no-op, and every realigned read must genuinely improve.  These
 * invariants hold independently of any backend comparison, so a bug
 * shared by every backend (which a pure differential is blind to)
 * still fails here.
 */
DiffResult
checkDecisionInvariants(const MinWhdGrid &grid,
                        const ConsensusDecision &want)
{
    const size_t num_cons = grid.numConsensuses();
    const size_t num_reads = grid.numReads();
    if (want.bestConsensus != 0) {
        bool placeable = false;
        for (size_t j = 0; j < num_reads; ++j)
            placeable |= grid.whd(want.bestConsensus, j) !=
                         kWhdInfinity;
        if (!placeable) {
            return DiffResult::fail(
                "software/oracle",
                fmt("picked consensus %u has no feasible placement",
                    want.bestConsensus));
        }
    } else if (want.numRealigned() != 0) {
        return DiffResult::fail(
            "software/oracle",
            fmt("no consensus picked but %u reads realigned",
                want.numRealigned()));
    }
    bool any_alternative = false;
    for (size_t i = 1; i < num_cons; ++i)
        for (size_t j = 0; j < num_reads; ++j)
            any_alternative |= grid.whd(i, j) != kWhdInfinity;
    if (!any_alternative &&
        (want.bestConsensus != 0 || want.numRealigned() != 0)) {
        return DiffResult::fail(
            "software/oracle",
            "degenerate target (no feasible alternative placement) "
            "is not a no-op");
    }
    for (size_t j = 0; j < num_reads; ++j) {
        if (!want.realign[j])
            continue;
        uint32_t ref_whd = grid.whd(0, j);
        uint32_t cur_whd = grid.whd(want.bestConsensus, j);
        if (cur_whd == kWhdInfinity ||
            (ref_whd != kWhdInfinity && cur_whd >= ref_whd)) {
            return DiffResult::fail(
                "software/oracle",
                fmt("read %zu realigned without improvement "
                    "(ref=%u cur=%u)",
                    j, ref_whd, cur_whd));
        }
    }
    return {};
}

PipelineOutcome
runVariant(const BackendVariant &variant, const ReferenceGenome &ref,
           std::vector<Read> reads)
{
    if (!variant.kernel.empty()) {
        WhdKernel kernel;
        panic_if(!parseWhdKernel(variant.kernel, &kernel),
                 "variant '%s' names unknown WHD kernel '%s'",
                 variant.label.c_str(), variant.kernel.c_str());
        ScopedWhdKernel scope(kernel);
        return runBackendPipeline(makeVariantBackend(variant),
                                  variant.jobThreads, ref,
                                  std::move(reads));
    }
    return runBackendPipeline(makeVariantBackend(variant),
                              variant.jobThreads, ref,
                              std::move(reads));
}

/**
 * Full bitwise comparison of two pipeline outcomes: alignments,
 * every RealignStats scalar including the complete WhdStats, and
 * variant calls.  Used where both runs share one design point
 * (hardened vs plain, faulted vs fault-free), so even the
 * prune-granularity caveat of diffPipeline does not apply.
 */
DiffResult
compareOutcomes(const std::string &label, const PipelineOutcome &got,
                const PipelineOutcome &oracle)
{
    if (got.alignments.size() != oracle.alignments.size()) {
        return DiffResult::fail(
            label, fmt("alignment count %zu vs oracle %zu",
                       got.alignments.size(),
                       oracle.alignments.size()));
    }
    for (size_t j = 0; j < got.alignments.size(); ++j) {
        if (got.alignments[j] != oracle.alignments[j]) {
            return DiffResult::fail(
                label, fmt("read %zu aligned as %s, oracle %s", j,
                           got.alignments[j].c_str(),
                           oracle.alignments[j].c_str()));
        }
    }
    const RealignStats &a = got.stats;
    const RealignStats &b = oracle.stats;
    if (a.targets != b.targets ||
        a.readsConsidered != b.readsConsidered ||
        a.readsRealigned != b.readsRealigned ||
        a.consensusesEvaluated != b.consensusesEvaluated) {
        return DiffResult::fail(
            label,
            fmt("realign stats diverge: targets %llu/%llu "
                "considered %llu/%llu realigned %llu/%llu "
                "consensuses %llu/%llu",
                static_cast<unsigned long long>(a.targets),
                static_cast<unsigned long long>(b.targets),
                static_cast<unsigned long long>(a.readsConsidered),
                static_cast<unsigned long long>(b.readsConsidered),
                static_cast<unsigned long long>(a.readsRealigned),
                static_cast<unsigned long long>(b.readsRealigned),
                static_cast<unsigned long long>(
                    a.consensusesEvaluated),
                static_cast<unsigned long long>(
                    b.consensusesEvaluated)));
    }
    if (!statsEqual(a.whd, b.whd)) {
        return DiffResult::fail(
            label, fmt("WhdStats diverge: %s vs oracle %s",
                       statsString(a.whd).c_str(),
                       statsString(b.whd).c_str()));
    }
    if (got.calls != oracle.calls) {
        size_t n = std::min(got.calls.size(), oracle.calls.size());
        std::string where =
            fmt("call count %zu vs %zu", got.calls.size(),
                oracle.calls.size());
        for (size_t i = 0; i < n; ++i) {
            if (got.calls[i] != oracle.calls[i]) {
                where = fmt("call %zu is %s, oracle %s", i,
                            got.calls[i].c_str(),
                            oracle.calls[i].c_str());
                break;
            }
        }
        return DiffResult::fail(label,
                                "variant calls diverge: " + where);
    }
    return {};
}

} // anonymous namespace

PipelineOutcome
runBackendPipeline(std::unique_ptr<const RealignerBackend> backend,
                   uint32_t job_threads, const ReferenceGenome &ref,
                   std::vector<Read> reads)
{
    RealignJobConfig cfg;
    cfg.threads = job_threads;
    RealignSession session(std::move(backend), cfg);
    RealignJobResult result = session.run(ref, reads);

    PipelineOutcome out;
    out.stats = result.stats;
    out.recovery = result.recovery;
    out.status = result.status;
    out.alignments.reserve(reads.size());
    for (const Read &r : reads) {
        out.alignments.push_back(
            r.name + ":" + std::to_string(r.contig) + ":" +
            std::to_string(r.pos) + ":" + r.cigar.toString());
    }
    for (size_t c = 0; c < ref.numContigs(); ++c) {
        int32_t contig = static_cast<int32_t>(c);
        for (const CalledVariant &v :
             callVariants(ref, reads, contig, 0,
                          ref.contig(contig).length())) {
            std::ostringstream os;
            os << v.contig << ':' << v.pos << ':'
               << static_cast<int>(v.type) << ':' << v.altBase << ':'
               << v.depth;
            char af[40];
            std::snprintf(af, sizeof(af), ":%.17g", v.alleleFraction);
            os << af;
            out.calls.push_back(os.str());
        }
    }
    return out;
}

DiffResult
diffKernelInput(const IrTargetInput &input)
{
    // Software kernel: pruning must not change the grid.
    WhdStats stats_noprune, stats_prune;
    MinWhdGrid grid = minWhd(input, false, &stats_noprune);
    MinWhdGrid grid_pruned = minWhd(input, true, &stats_prune);
    if (!(grid == grid_pruned)) {
        return DiffResult::fail("software/prune=on",
                                "pruned min-WHD grid diverges from "
                                "unpruned grid");
    }
    if (stats_noprune.comparisons != stats_noprune.comparisonsUnpruned)
        return DiffResult::fail(
            "software/prune=off",
            fmt("unpruned kernel executed %llu of %llu comparisons",
                static_cast<unsigned long long>(
                    stats_noprune.comparisons),
                static_cast<unsigned long long>(
                    stats_noprune.comparisonsUnpruned)));
    if (stats_prune.comparisons > stats_prune.comparisonsUnpruned)
        return DiffResult::fail(
            "software/prune=on",
            fmt("counter invariant violated: %s",
                statsString(stats_prune).c_str()));

    // Dispatch sweep: every supported WHD kernel implementation
    // must reproduce the ambient kernel's grids AND work counters
    // bit for bit, pruned and unpruned.
    for (WhdKernel kernel : supportedWhdKernels()) {
        ScopedWhdKernel scope(kernel);
        for (bool prune : {false, true}) {
            std::string label =
                fmt("software/kernel=%s/prune=%s",
                    whdKernelName(kernel), prune ? "on" : "off");
            WhdStats stats;
            MinWhdGrid got = minWhd(input, prune, &stats);
            const MinWhdGrid &want_grid =
                prune ? grid_pruned : grid;
            const WhdStats &want_stats =
                prune ? stats_prune : stats_noprune;
            if (!(got == want_grid)) {
                return DiffResult::fail(
                    label, "min-WHD grid diverges from the ambient "
                           "dispatch kernel");
            }
            if (!statsEqual(stats, want_stats)) {
                return DiffResult::fail(
                    label,
                    fmt("WhdStats diverge: %s vs ambient %s",
                        statsString(stats).c_str(),
                        statsString(want_stats).c_str()));
            }
        }
    }

    // Feasible placements must never surface as the infeasible
    // sentinel (WHD accumulation saturates at kWhdMax instead).
    for (size_t i = 0; i < input.numConsensuses(); ++i) {
        for (size_t j = 0; j < input.numReads(); ++j) {
            bool feasible = input.readBases[j].size() <=
                            input.consensuses[i].size();
            if (feasible && grid.whd(i, j) == kWhdInfinity) {
                return DiffResult::fail(
                    "software/prune=off",
                    fmt("feasible pair (cons %zu, read %zu) reported "
                        "as never placed",
                        i, j));
            }
        }
    }

    ConsensusDecision want = scoreAndSelect(grid);
    DiffResult invariants = checkDecisionInvariants(grid, want);
    if (!invariants.ok)
        return invariants;

    // Targets outside the architectural limits stop at the clean
    // rejection boundary; the accelerator never sees them.
    if (!input.limitViolation().empty())
        return {};

    MarshalledTarget marshalled = marshalTarget(input);
    // Byte-image round trip: what the unit reads back out of its
    // block RAMs must be exactly what went in.
    for (uint32_t i = 0; i < marshalled.numConsensuses; ++i) {
        if (marshalled.consensusAt(i) != input.consensuses[i])
            return DiffResult::fail(
                "marshal", fmt("consensus %u image round-trip "
                               "mismatch", i));
    }
    for (uint32_t j = 0; j < marshalled.numReads; ++j) {
        if (marshalled.readAt(j) != input.readBases[j] ||
            marshalled.qualsAt(j) != input.readQuals[j])
            return DiffResult::fail(
                "marshal",
                fmt("read %u image round-trip mismatch", j));
    }

    for (uint32_t width : {1u, 32u}) {
        for (bool prune : {false, true}) {
            std::string label = fmt("accelerated/width=%u/prune=%s",
                                    width, prune ? "on" : "off");
            IrComputeResult hw = irCompute(marshalled, width, prune);
            if (hw.bestConsensus != want.bestConsensus) {
                return DiffResult::fail(
                    label, fmt("picked consensus %u, software "
                               "picked %u",
                               hw.bestConsensus,
                               want.bestConsensus));
            }
            for (size_t j = 0; j < input.numReads(); ++j) {
                bool hw_flag = hw.output.realignFlags[j] != 0;
                bool sw_flag = want.realign[j] != 0;
                if (hw_flag != sw_flag) {
                    return DiffResult::fail(
                        label,
                        fmt("read %zu realign flag %d, software %d",
                            j, hw_flag ? 1 : 0, sw_flag ? 1 : 0));
                }
                uint32_t sw_pos =
                    sw_flag ? want.newOffset[j] +
                                  marshalled.targetStart
                            : 0;
                if (hw.output.newPositions[j] != sw_pos) {
                    return DiffResult::fail(
                        label,
                        fmt("read %zu new position %u, software %u",
                            j, hw.output.newPositions[j], sw_pos));
                }
            }
            // Dispatch sweep on the datapath model: every kernel
            // must agree on outputs, work counters, and the cycle
            // model (hdcCycles folds in the executed chunk count).
            for (WhdKernel kernel : supportedWhdKernels()) {
                ScopedWhdKernel scope(kernel);
                IrComputeResult kk =
                    irCompute(marshalled, width, prune);
                if (kk.bestConsensus != hw.bestConsensus ||
                    kk.output.realignFlags !=
                        hw.output.realignFlags ||
                    kk.output.newPositions !=
                        hw.output.newPositions ||
                    !statsEqual(kk.whd, hw.whd) ||
                    kk.hdcCycles != hw.hdcCycles ||
                    kk.selectorCycles != hw.selectorCycles) {
                    return DiffResult::fail(
                        fmt("%s/kernel=%s", label.c_str(),
                            whdKernelName(kernel)),
                        "datapath results diverge across dispatch "
                        "kernels");
                }
            }
            // At scalar width the datapath's prune granularity is
            // one base, exactly the software kernel's: the work
            // counters must agree bit for bit.
            if (width == 1) {
                const WhdStats &sw =
                    prune ? stats_prune : stats_noprune;
                if (!statsEqual(hw.whd, sw)) {
                    return DiffResult::fail(
                        label,
                        fmt("WhdStats diverge: hw %s, sw %s",
                            statsString(hw.whd).c_str(),
                            statsString(sw).c_str()));
                }
            }
        }
    }
    return {};
}

DiffResult
diffKernelSeed(uint64_t seed, size_t *failed_index)
{
    std::vector<IrTargetInput> inputs = makeKernelInputs(seed);
    for (size_t i = 0; i < inputs.size(); ++i) {
        DiffResult r = diffKernelInput(inputs[i]);
        if (!r.ok) {
            if (failed_index != nullptr)
                *failed_index = i;
            r.detail = fmt("seed %llu input %zu: %s",
                           static_cast<unsigned long long>(seed), i,
                           r.detail.c_str()) ;
            return r;
        }
    }
    return {};
}

DiffResult
diffPipeline(const ReferenceGenome &ref,
             const std::vector<Read> &reads,
             const std::vector<BackendVariant> &variants)
{
    if (variants.empty())
        return {};
    PipelineOutcome oracle = runVariant(variants[0], ref, reads);
    for (size_t v = 1; v < variants.size(); ++v) {
        const BackendVariant &variant = variants[v];
        PipelineOutcome got = runVariant(variant, ref, reads);

        for (size_t j = 0; j < reads.size(); ++j) {
            if (got.alignments[j] != oracle.alignments[j]) {
                return DiffResult::fail(
                    variant.label,
                    fmt("read %zu aligned as %s, oracle %s", j,
                        got.alignments[j].c_str(),
                        oracle.alignments[j].c_str()));
            }
        }
        const RealignStats &a = got.stats;
        const RealignStats &b = oracle.stats;
        if (a.targets != b.targets ||
            a.readsConsidered != b.readsConsidered ||
            a.readsRealigned != b.readsRealigned ||
            a.consensusesEvaluated != b.consensusesEvaluated) {
            return DiffResult::fail(
                variant.label,
                fmt("realign stats diverge: targets %llu/%llu "
                    "considered %llu/%llu realigned %llu/%llu "
                    "consensuses %llu/%llu",
                    static_cast<unsigned long long>(a.targets),
                    static_cast<unsigned long long>(b.targets),
                    static_cast<unsigned long long>(
                        a.readsConsidered),
                    static_cast<unsigned long long>(
                        b.readsConsidered),
                    static_cast<unsigned long long>(
                        a.readsRealigned),
                    static_cast<unsigned long long>(
                        b.readsRealigned),
                    static_cast<unsigned long long>(
                        a.consensusesEvaluated),
                    static_cast<unsigned long long>(
                        b.consensusesEvaluated)));
        }
        // The would-be work is a pure function of the workload; the
        // executed work additionally depends on prune granularity
        // (per base in software, per chunk in hardware), so full
        // counter equality holds only within a (kind, prune) cell.
        if (a.whd.comparisonsUnpruned != b.whd.comparisonsUnpruned ||
            a.whd.offsetsEvaluated != b.whd.offsetsEvaluated) {
            return DiffResult::fail(
                variant.label,
                fmt("unpruned work diverges: %s vs oracle %s",
                    statsString(a.whd).c_str(),
                    statsString(b.whd).c_str()));
        }
        if (a.whd.comparisons > a.whd.comparisonsUnpruned) {
            return DiffResult::fail(
                variant.label,
                fmt("counter invariant violated: %s",
                    statsString(a.whd).c_str()));
        }
        if (!variant.prune && !statsEqual(a.whd, b.whd)) {
            return DiffResult::fail(
                variant.label,
                fmt("unpruned WhdStats diverge: %s vs oracle %s",
                    statsString(a.whd).c_str(),
                    statsString(b.whd).c_str()));
        }
        if (got.calls != oracle.calls) {
            size_t n = std::min(got.calls.size(),
                                oracle.calls.size());
            std::string where = fmt(
                "call count %zu vs %zu", got.calls.size(),
                oracle.calls.size());
            for (size_t i = 0; i < n; ++i) {
                if (got.calls[i] != oracle.calls[i]) {
                    where = fmt("call %zu is %s, oracle %s", i,
                                got.calls[i].c_str(),
                                oracle.calls[i].c_str());
                    break;
                }
            }
            return DiffResult::fail(
                variant.label,
                "variant calls diverge: " + where);
        }
    }
    return {};
}

DiffResult
diffPipelineSeed(uint64_t seed)
{
    GenomeWorkload workload = makeDiffGenome(seed);
    std::vector<Read> reads;
    for (const ChromosomeWorkload &chrom : workload.chromosomes)
        reads.insert(reads.end(), chrom.reads.begin(),
                     chrom.reads.end());
    DiffResult r = diffPipeline(workload.reference, reads);
    if (!r.ok) {
        r.detail = fmt("seed %llu: %s",
                       static_cast<unsigned long long>(seed),
                       r.detail.c_str());
    }
    return r;
}

DiffResult
diffHardenedPipeline(const ReferenceGenome &ref,
                     const std::vector<Read> &reads,
                     const std::vector<BackendVariant> &variants)
{
    for (const BackendVariant &variant : variants) {
        // Only accelerated design points have a device to harden.
        if (!variant.accelerated)
            continue;
        PipelineOutcome plain = runVariant(variant, ref, reads);
        BackendVariant twin = variant;
        twin.hardened = true;
        twin.label = variant.label + "/hardened";
        PipelineOutcome hard = runVariant(twin, ref, reads);
        DiffResult r = compareOutcomes(twin.label, hard, plain);
        if (!r.ok)
            return r;
        if (hard.status != RunStatus::Ok) {
            return DiffResult::fail(
                twin.label,
                fmt("fault-free hardened run reports status '%s'",
                    runStatusName(hard.status)));
        }
        const RecoveryStats &rec = hard.recovery;
        if (rec.faultsInjected != 0 || rec.anyRecovery() ||
            rec.retrySuccesses != 0 || rec.staleResponses != 0) {
            return DiffResult::fail(
                twin.label,
                fmt("recovery counters ticked on a fault-free run "
                    "(injected=%llu retries=%llu fallbacks=%llu)",
                    static_cast<unsigned long long>(
                        rec.faultsInjected),
                    static_cast<unsigned long long>(rec.retries),
                    static_cast<unsigned long long>(
                        rec.softwareFallbacks)));
        }
    }
    return {};
}

DiffResult
diffFaultPlan(const ReferenceGenome &ref,
              const std::vector<Read> &reads, const FaultPlan &plan,
              uint32_t cards, bool stealing)
{
    // Oracle: the plain accelerated backend, fault-free.  The
    // hardened path's fault-free transparency is asserted
    // separately (diffHardenedPipeline), so comparing the faulted
    // run against the plain backend checks both layers at once.
    PipelineOutcome oracle = runBackendPipeline(
        makeAcceleratedBackend("accelerated/oracle",
                               "fault differential oracle",
                               AccelConfig::paperOptimized(),
                               SchedulePolicy::AsynchronousParallel),
        1, ref, reads);

    std::string label = "hardened[" + plan.describe() + "]";
    if (cards > 1) {
        label += "/cards=" + std::to_string(cards) +
                 "/steal=" + (stealing ? "on" : "off");
    }
    FleetConfig fleet =
        FleetConfig::singleCard(AccelConfig::paperOptimized());
    fleet.cards = cards;
    fleet.stealing = stealing;
    fleet.cardPlans = {plan};
    PipelineOutcome got = runBackendPipeline(
        makeHardenedBackend(label, "fault differential subject",
                            std::move(fleet)),
        1, ref, reads);

    DiffResult r = compareOutcomes(label, got, oracle);
    if (!r.ok)
        return r;
    // The default policy retries and falls back; no injectable
    // fault may surface as an unrecoverable target.
    if (got.status == RunStatus::Failed ||
        got.recovery.failedTargets != 0) {
        return DiffResult::fail(
            label, fmt("%llu targets unrecovered (status '%s')",
                       static_cast<unsigned long long>(
                           got.recovery.failedTargets),
                       runStatusName(got.status)));
    }
    return {};
}

DiffResult
diffFaultSeed(uint64_t seed, uint32_t cards, bool stealing)
{
    GenomeWorkload workload = makeDiffGenome(seed);
    std::vector<Read> reads;
    for (const ChromosomeWorkload &chrom : workload.chromosomes)
        reads.insert(reads.end(), chrom.reads.begin(),
                     chrom.reads.end());
    FaultPlan plan = FaultPlan::random(seed);
    DiffResult r = diffFaultPlan(workload.reference, reads, plan,
                                 cards, stealing);
    if (!r.ok) {
        r.detail = fmt("seed %llu plan '%s': %s",
                       static_cast<unsigned long long>(seed),
                       plan.describe().c_str(), r.detail.c_str());
    }
    return r;
}

DiffResult
diffScenarioSeed(ScenarioProfile profile, uint64_t seed)
{
    ScenarioWorkload wl = makeScenarioWorkload(profile, seed);
    DiffResult r = diffPipeline(wl.reference, wl.reads);
    if (r.ok)
        r = diffHardenedPipeline(wl.reference, wl.reads);
    if (!r.ok) {
        r.detail = fmt("scenario %s seed %llu: %s",
                       scenarioName(profile),
                       static_cast<unsigned long long>(seed),
                       r.detail.c_str());
    }
    return r;
}

DiffResult
diffScenarioFaultSeed(ScenarioProfile profile, uint64_t seed,
                      uint32_t cards, bool stealing)
{
    ScenarioWorkload wl = makeScenarioWorkload(profile, seed);
    FaultPlan plan = FaultPlan::random(seed);
    DiffResult r = diffFaultPlan(wl.reference, wl.reads, plan, cards,
                                 stealing);
    if (!r.ok) {
        r.detail = fmt("scenario %s seed %llu plan '%s': %s",
                       scenarioName(profile),
                       static_cast<unsigned long long>(seed),
                       plan.describe().c_str(), r.detail.c_str());
    }
    return r;
}

namespace {

/** One design point's streaming-vs-in-memory comparison. */
DiffResult
diffStreamingVariant(const BackendVariant &variant,
                     const ReferenceGenome &ref,
                     const std::string &input_sam)
{
    const std::string label = variant.label + "/streamed";

    // In-memory arm: batch-load the same serialized bytes so both
    // arms parse identical records, realign, serialize.
    std::istringstream mem_in(input_sam);
    std::vector<Read> mem_reads = readSamLite(mem_in, ref);
    RealignJobConfig cfg;
    cfg.threads = variant.jobThreads;
    RealignSession mem_session(makeVariantBackend(variant), cfg);
    RealignJobResult mem_result = mem_session.run(ref, mem_reads);
    std::ostringstream mem_out;
    writeSamLite(mem_out, ref, mem_reads);

    // Streaming arm: contig batches pulled off the same bytes,
    // realigned group-by-group, serialized as the groups complete.
    std::istringstream stream_in(input_sam);
    SamLiteBatchSource source(stream_in, ref);
    RealignSession stream_session(makeVariantBackend(variant), cfg);
    std::ostringstream stream_out;
    StreamRealignResult stream_result = stream_session.runStreamed(
        ref, source, [&](std::vector<Read> &group) {
            writeSamLite(stream_out, ref, group);
        });

    if (!stream_result.parseOk) {
        return DiffResult::fail(
            label, fmt("streaming ingest rejected its own "
                       "serialization: %s",
                       stream_result.parseError.describe().c_str()));
    }
    if (stream_result.readsStreamed != mem_reads.size()) {
        return DiffResult::fail(
            label,
            fmt("streamed %llu reads, in-memory load has %zu",
                static_cast<unsigned long long>(
                    stream_result.readsStreamed),
                mem_reads.size()));
    }
    if (stream_out.str() != mem_out.str()) {
        const std::string &a = stream_out.str();
        const std::string &b = mem_out.str();
        size_t n = std::min(a.size(), b.size());
        size_t at = n;
        for (size_t i = 0; i < n; ++i) {
            if (a[i] != b[i]) {
                at = i;
                break;
            }
        }
        return DiffResult::fail(
            label,
            fmt("realigned SAM-lite output diverges at byte %zu "
                "(%zu vs %zu bytes total)",
                at, a.size(), b.size()));
    }
    const RealignStats &s = stream_result.job.stats;
    const RealignStats &m = mem_result.stats;
    if (s.targets != m.targets ||
        s.readsConsidered != m.readsConsidered ||
        s.readsRealigned != m.readsRealigned ||
        s.consensusesEvaluated != m.consensusesEvaluated ||
        !statsEqual(s.whd, m.whd)) {
        return DiffResult::fail(
            label,
            fmt("RealignStats diverge: targets %llu/%llu "
                "considered %llu/%llu realigned %llu/%llu "
                "consensuses %llu/%llu whd %s vs %s",
                static_cast<unsigned long long>(s.targets),
                static_cast<unsigned long long>(m.targets),
                static_cast<unsigned long long>(s.readsConsidered),
                static_cast<unsigned long long>(m.readsConsidered),
                static_cast<unsigned long long>(s.readsRealigned),
                static_cast<unsigned long long>(m.readsRealigned),
                static_cast<unsigned long long>(
                    s.consensusesEvaluated),
                static_cast<unsigned long long>(
                    m.consensusesEvaluated),
                statsString(s.whd).c_str(),
                statsString(m.whd).c_str()));
    }
    return {};
}

} // anonymous namespace

DiffResult
diffStreamingIngest(const ReferenceGenome &ref,
                    const std::vector<Read> &reads,
                    const std::vector<BackendVariant> &variants)
{
    std::ostringstream input;
    writeSamLite(input, ref, reads);
    const std::string input_sam = input.str();

    for (const BackendVariant &variant : variants) {
        DiffResult r;
        if (!variant.kernel.empty()) {
            WhdKernel kernel;
            panic_if(!parseWhdKernel(variant.kernel, &kernel),
                     "variant '%s' names unknown WHD kernel '%s'",
                     variant.label.c_str(), variant.kernel.c_str());
            ScopedWhdKernel scope(kernel);
            r = diffStreamingVariant(variant, ref, input_sam);
        } else {
            r = diffStreamingVariant(variant, ref, input_sam);
        }
        if (!r.ok)
            return r;
    }
    return {};
}

DiffResult
diffStreamingIngestSeed(uint64_t seed)
{
    GenomeWorkload workload = makeDiffGenome(seed);
    std::vector<Read> reads;
    for (const ChromosomeWorkload &chrom : workload.chromosomes)
        reads.insert(reads.end(), chrom.reads.begin(),
                     chrom.reads.end());
    DiffResult r = diffStreamingIngest(workload.reference, reads);
    if (!r.ok) {
        r.detail = fmt("seed %llu: %s",
                       static_cast<unsigned long long>(seed),
                       r.detail.c_str());
    }
    return r;
}

std::vector<Read>
minimizeReads(const ReferenceGenome &ref, std::vector<Read> reads,
              const std::function<DiffResult(
                  const ReferenceGenome &,
                  const std::vector<Read> &)> &check)
{
    auto fails = [&](const std::vector<Read> &r) {
        return !check(ref, r).ok;
    };
    if (!fails(reads))
        return reads;

    // Whole contigs first: a mismatch is almost always local to one.
    std::set<int32_t> contigs;
    for (const Read &r : reads)
        contigs.insert(r.contig);
    if (contigs.size() > 1) {
        for (int32_t c : contigs) {
            std::vector<Read> candidate;
            for (const Read &r : reads)
                if (r.contig != c)
                    candidate.push_back(r);
            if (!candidate.empty() && fails(candidate))
                reads = std::move(candidate);
        }
    }

    // Then delta-debugging style chunk removal down to single reads.
    size_t chunk = std::max<size_t>(1, reads.size() / 2);
    while (chunk >= 1) {
        bool removed = false;
        for (size_t start = 0;
             start < reads.size() && reads.size() > 1;
             /* advance below */) {
            size_t len = std::min(chunk, reads.size() - start);
            if (len == reads.size()) {
                start += len;
                continue;
            }
            std::vector<Read> candidate;
            candidate.reserve(reads.size() - len);
            candidate.insert(candidate.end(), reads.begin(),
                             reads.begin() + start);
            candidate.insert(candidate.end(),
                             reads.begin() + start + len,
                             reads.end());
            if (fails(candidate)) {
                reads = std::move(candidate);
                removed = true; // same start now names new reads
            } else {
                start += len;
            }
        }
        if (chunk == 1 && !removed)
            break;
        if (!removed)
            chunk /= 2;
    }
    return reads;
}

IrTargetInput
minimizeKernelInput(
    IrTargetInput input,
    const std::function<DiffResult(const IrTargetInput &)> &check)
{
    auto fails = [&](const IrTargetInput &t) {
        return !check(t).ok;
    };
    if (!fails(input))
        return input;

    bool shrunk = true;
    while (shrunk) {
        shrunk = false;
        for (size_t j = 0; j < input.numReads();) {
            IrTargetInput candidate = input;
            candidate.readBases.erase(candidate.readBases.begin() + j);
            candidate.readQuals.erase(candidate.readQuals.begin() + j);
            candidate.readIndices.erase(
                candidate.readIndices.begin() + j);
            if (fails(candidate)) {
                input = std::move(candidate);
                shrunk = true;
            } else {
                ++j;
            }
        }
        // Consensus 0 is the reference window and structural.
        for (size_t i = 1; i < input.numConsensuses();) {
            IrTargetInput candidate = input;
            candidate.consensuses.erase(
                candidate.consensuses.begin() + i);
            candidate.events.erase(candidate.events.begin() + i);
            if (fails(candidate)) {
                input = std::move(candidate);
                shrunk = true;
            } else {
                ++i;
            }
        }
    }
    return input;
}

} // namespace difftest
} // namespace iracc
