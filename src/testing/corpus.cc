#include "testing/corpus.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "genomics/io.hh"
#include "util/logging.hh"

namespace iracc {
namespace difftest {

namespace {

/** Escape newlines so detail strings stay one-line. */
std::string
oneLine(const std::string &s)
{
    std::string out;
    for (char c : s)
        out.push_back(c == '\n' ? ' ' : c);
    return out;
}

std::string
qualsToDecimal(const QualSeq &quals)
{
    std::ostringstream os;
    for (size_t i = 0; i < quals.size(); ++i) {
        if (i != 0)
            os << ',';
        os << static_cast<unsigned>(quals[i]);
    }
    return os.str();
}

QualSeq
decimalToQuals(const std::string &s)
{
    QualSeq out;
    std::istringstream is(s);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        int v = std::stoi(tok);
        fatal_if(v < 0 || v > 255,
                 "corpus quality %d out of range", v);
        out.push_back(static_cast<uint8_t>(v));
    }
    return out;
}

/** Collect the lines between "begin <tag>" and "end <tag>". */
std::string
readSection(std::istream &is, const std::string &tag)
{
    std::string line, body;
    const std::string end = "end " + tag;
    while (std::getline(is, line)) {
        if (line == end)
            return body;
        body += line;
        body += '\n';
    }
    fatal("corpus case: unterminated section '%s'", tag.c_str());
    return body;
}

} // anonymous namespace

void
writeReproCase(std::ostream &os, const ReproCase &repro)
{
    fatal_if(repro.kind != "pipeline" && repro.kind != "kernel" &&
                 repro.kind != "fault",
             "unknown repro kind '%s'", repro.kind.c_str());
    os << "# iracc-diff repro case v1\n";
    os << "kind " << repro.kind << '\n';
    os << "seed " << repro.seed << '\n';
    if (!repro.variant.empty())
        os << "variant " << oneLine(repro.variant) << '\n';
    if (!repro.detail.empty())
        os << "detail " << oneLine(repro.detail) << '\n';
    if (repro.kind == "fault") {
        fatal_if(repro.faultPlan.empty(),
                 "fault repro case needs a fault plan");
        os << "faultplan " << oneLine(repro.faultPlan) << '\n';
    }
    if (repro.kind != "kernel") {
        os << "begin reference\n";
        writeFasta(os, repro.reference);
        os << "end reference\n";
        os << "begin reads\n";
        writeSamLite(os, repro.reference, repro.reads);
        os << "end reads\n";
        return;
    }
    os << "window " << repro.target.windowStart << ' '
       << repro.target.windowEnd << '\n';
    os << "begin consensuses\n";
    for (const BaseSeq &cons : repro.target.consensuses)
        os << cons << '\n';
    os << "end consensuses\n";
    os << "begin reads\n";
    for (size_t j = 0; j < repro.target.numReads(); ++j) {
        os << repro.target.readBases[j] << ' '
           << qualsToDecimal(repro.target.readQuals[j]) << '\n';
    }
    os << "end reads\n";
}

ReproCase
readReproCase(std::istream &is)
{
    ReproCase repro;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::string key;
        fields >> key;
        if (key == "kind") {
            fields >> repro.kind;
        } else if (key == "seed") {
            fields >> repro.seed;
        } else if (key == "variant" || key == "detail" ||
                   key == "faultplan") {
            std::string rest;
            std::getline(fields, rest);
            if (!rest.empty() && rest[0] == ' ')
                rest.erase(0, 1);
            (key == "variant"
                 ? repro.variant
                 : key == "detail" ? repro.detail
                                   : repro.faultPlan) = rest;
        } else if (key == "window") {
            fields >> repro.target.windowStart >>
                repro.target.windowEnd;
            repro.target.target.start = repro.target.windowStart;
            repro.target.target.end = repro.target.windowEnd;
        } else if (key == "begin") {
            std::string tag;
            fields >> tag;
            std::string body = readSection(is, tag);
            std::istringstream section(body);
            if (tag == "reference") {
                repro.reference = readFasta(section);
            } else if (tag == "reads" &&
                       repro.kind != "kernel") {
                repro.reads = readSamLite(section, repro.reference);
            } else if (tag == "consensuses") {
                std::string cons;
                while (std::getline(section, cons)) {
                    if (cons.empty())
                        continue;
                    repro.target.consensuses.push_back(cons);
                    repro.target.events.emplace_back();
                }
            } else if (tag == "reads") {
                std::string entry;
                while (std::getline(section, entry)) {
                    if (entry.empty())
                        continue;
                    std::istringstream pair(entry);
                    std::string bases, quals;
                    fatal_if(!(pair >> bases >> quals),
                             "malformed kernel read line '%s'",
                             entry.c_str());
                    repro.target.readIndices.push_back(
                        static_cast<uint32_t>(
                            repro.target.readIndices.size()));
                    repro.target.readBases.push_back(bases);
                    repro.target.readQuals.push_back(
                        decimalToQuals(quals));
                }
            } else {
                fatal("corpus case: unknown section '%s'",
                      tag.c_str());
            }
        } else {
            fatal("corpus case: unknown key '%s'", key.c_str());
        }
    }
    fatal_if(repro.kind != "pipeline" && repro.kind != "kernel" &&
                 repro.kind != "fault",
             "corpus case missing kind");
    fatal_if(repro.kind == "fault" && repro.faultPlan.empty(),
             "fault corpus case missing faultplan");
    return repro;
}

std::string
saveReproCase(const ReproCase &repro, const std::string &dir)
{
    std::filesystem::create_directories(dir);
    for (int n = 0;; ++n) {
        std::ostringstream name;
        name << "repro-" << repro.kind << "-seed" << repro.seed
             << '-' << n << ".case";
        std::filesystem::path path =
            std::filesystem::path(dir) / name.str();
        if (std::filesystem::exists(path))
            continue;
        std::ofstream os(path);
        fatal_if(!os, "cannot write corpus case '%s'",
                 path.string().c_str());
        writeReproCase(os, repro);
        return path.string();
    }
}

ReproCase
loadReproCase(const std::string &path)
{
    std::ifstream is(path);
    fatal_if(!is, "cannot read corpus case '%s'", path.c_str());
    return readReproCase(is);
}

DiffResult
replayReproCase(const ReproCase &repro)
{
    if (repro.kind == "kernel")
        return diffKernelInput(repro.target);
    if (repro.kind == "fault") {
        return diffFaultPlan(repro.reference, repro.reads,
                             FaultPlan::parse(repro.faultPlan));
    }
    return diffPipeline(repro.reference, repro.reads);
}

std::vector<std::string>
listCorpus(const std::string &dir)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".case")
            out.push_back(entry.path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace difftest
} // namespace iracc
