/**
 * @file
 * Minimal JSON document model and recursive-descent parser.
 *
 * Exists so the repository can *validate* the JSON it emits (the
 * Chrome trace-event exporter and the counter dumps of
 * src/sim/perf_monitor) without a third-party dependency: the
 * counter-conservation tests parse exported traces back and check
 * them structurally.  Supports the full JSON value grammar
 * (objects, arrays, strings with escapes, numbers, booleans,
 * null); numbers are held as double, which is sufficient for the
 * cycle counts we round-trip (< 2^53).
 */

#ifndef IRACC_UTIL_JSON_HH
#define IRACC_UTIL_JSON_HH

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace iracc {

/** One parsed JSON value (tree-owning). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }
    bool isObject() const { return k == Kind::Object; }
    bool isArray() const { return k == Kind::Array; }
    bool isNumber() const { return k == Kind::Number; }
    bool isString() const { return k == Kind::String; }
    bool isBool() const { return k == Kind::Bool; }

    /** Value accessors; panic() on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;
    const std::map<std::string, JsonValue> &asObject() const;

    /** @return true when this object has member @p key. */
    bool has(const std::string &key) const;

    /** Object member access; panic() when missing. */
    const JsonValue &at(const std::string &key) const;

    /** Array element access; panic() when out of range. */
    const JsonValue &at(size_t index) const;

    /** Array/object element count (0 otherwise). */
    size_t size() const;

    /**
     * Parse @p text as one JSON document.
     *
     * @param text  the document
     * @param error filled with a position-stamped message on
     *              failure (required)
     * @return the parsed value; Null kind on failure with *error
     *         non-empty
     */
    static JsonValue parse(const std::string &text,
                           std::string *error);

  private:
    Kind k = Kind::Null;
    bool boolVal = false;
    double numVal = 0.0;
    std::string strVal;
    std::vector<JsonValue> arrVal;
    std::map<std::string, JsonValue> objVal;

    friend class JsonParser;
};

/**
 * Escape @p s for embedding inside a JSON string literal (without
 * the surrounding quotes).  Handles quotes, backslashes, and all
 * control characters below 0x20, so any byte string round-trips
 * through JsonValue::parse.  Every JSON writer in the repository
 * (Chrome trace export, counter dumps, metrics registry, bench
 * reports) must use this -- hand-rolled escaping has produced
 * unparseable documents for names containing '"' or '\\'.
 */
std::string jsonEscape(const std::string &s);

/** jsonEscape wrapped in double quotes: a complete string token. */
std::string jsonQuote(const std::string &s);

} // namespace iracc

#endif // IRACC_UTIL_JSON_HH
