/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All randomness in IRACC flows through Rng so that every experiment
 * is reproducible from a single 64-bit seed.  The generator is
 * xoshiro256** (public domain, Blackman & Vigna), which is fast,
 * passes BigCrush, and -- unlike std::mt19937 -- has an identical,
 * documented bit stream on every platform and standard library.
 */

#ifndef IRACC_UTIL_RNG_HH
#define IRACC_UTIL_RNG_HH

#include <cstddef>
#include <utility>
#include <cstdint>
#include <vector>

namespace iracc {

/**
 * Deterministic xoshiro256** random source with the distribution
 * helpers the read simulator and workload generators need.
 */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of a single 64-bit value. */
    explicit Rng(uint64_t seed = 0x1905CA1Eu);

    /** @return the next raw 64-bit value. */
    uint64_t next();

    /** @return uniform integer in [0, bound), bound > 0. */
    uint64_t below(uint64_t bound);

    /** @return uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** @return uniform double in [0, 1). */
    double uniform();

    /** @return true with probability p. */
    bool chance(double p);

    /** @return sample from a normal distribution (Box-Muller). */
    double normal(double mean, double stddev);

    /** @return sample from a geometric distribution with success p. */
    uint64_t geometric(double p);

    /**
     * Sample from a truncated Zipf distribution over ranks
     * [1, n] with exponent s.  Used to model the heavily skewed
     * per-locus read depth the paper reports (Section II-C).
     *
     * @return rank in [1, n]
     */
    uint64_t zipf(uint64_t n, double s);

    /** Derive an independent child generator (for per-thread use). */
    Rng fork();

    /**
     * Derive a named, order-independent generator stream.
     *
     * Unlike fork(), which consumes state from the parent and so
     * depends on how many values were drawn before it, stream()
     * is a pure function of (seed, a, b): every caller that names
     * the same stream gets the same bit sequence no matter how
     * many threads are running or in what order streams are
     * created.  Used to give each (contig, target) its own
     * reproducible randomness in the parallel realignment job.
     */
    static Rng stream(uint64_t seed, uint64_t a, uint64_t b = 0);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    uint64_t s[4];
    bool haveSpareNormal = false;
    double spareNormal = 0.0;
};

} // namespace iracc

#endif // IRACC_UTIL_RNG_HH
