#include "util/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace iracc {

bool
JsonValue::asBool() const
{
    panic_if(k != Kind::Bool, "JSON value is not a bool");
    return boolVal;
}

double
JsonValue::asNumber() const
{
    panic_if(k != Kind::Number, "JSON value is not a number");
    return numVal;
}

const std::string &
JsonValue::asString() const
{
    panic_if(k != Kind::String, "JSON value is not a string");
    return strVal;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    panic_if(k != Kind::Array, "JSON value is not an array");
    return arrVal;
}

const std::map<std::string, JsonValue> &
JsonValue::asObject() const
{
    panic_if(k != Kind::Object, "JSON value is not an object");
    return objVal;
}

bool
JsonValue::has(const std::string &key) const
{
    return k == Kind::Object && objVal.count(key) > 0;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    panic_if(k != Kind::Object, "JSON value is not an object");
    auto it = objVal.find(key);
    panic_if(it == objVal.end(), "JSON object has no member '%s'",
             key.c_str());
    return it->second;
}

const JsonValue &
JsonValue::at(size_t index) const
{
    panic_if(k != Kind::Array, "JSON value is not an array");
    panic_if(index >= arrVal.size(),
             "JSON array index %zu out of range", index);
    return arrVal[index];
}

size_t
JsonValue::size() const
{
    if (k == Kind::Array)
        return arrVal.size();
    if (k == Kind::Object)
        return objVal.size();
    return 0;
}

/** Recursive-descent parser over a string. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : src(text), err(error)
    {
    }

    JsonValue
    run()
    {
        JsonValue v = parseValue();
        if (!err->empty())
            return JsonValue();
        skipWs();
        if (pos != src.size()) {
            fail("trailing characters after document");
            return JsonValue();
        }
        return v;
    }

  private:
    void
    fail(const std::string &what)
    {
        if (err->empty()) {
            *err = "JSON parse error at offset " +
                   std::to_string(pos) + ": " + what;
        }
    }

    void
    skipWs()
    {
        while (pos < src.size() &&
               (src[pos] == ' ' || src[pos] == '\t' ||
                src[pos] == '\n' || src[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < src.size() && src[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        if (pos >= src.size()) {
            fail("unexpected end of input");
            return JsonValue();
        }
        char c = src[pos];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n')
            return parseNull();
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber();
        fail(std::string("unexpected character '") + c + "'");
        return JsonValue();
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.k = JsonValue::Kind::Object;
        consume('{');
        skipWs();
        if (consume('}'))
            return v;
        while (true) {
            skipWs();
            if (pos >= src.size() || src[pos] != '"') {
                fail("expected object key string");
                return JsonValue();
            }
            JsonValue key = parseString();
            if (!err->empty())
                return JsonValue();
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return JsonValue();
            }
            JsonValue member = parseValue();
            if (!err->empty())
                return JsonValue();
            v.objVal[key.strVal] = std::move(member);
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return v;
            fail("expected ',' or '}' in object");
            return JsonValue();
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.k = JsonValue::Kind::Array;
        consume('[');
        skipWs();
        if (consume(']'))
            return v;
        while (true) {
            JsonValue elem = parseValue();
            if (!err->empty())
                return JsonValue();
            v.arrVal.push_back(std::move(elem));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return v;
            fail("expected ',' or ']' in array");
            return JsonValue();
        }
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        v.k = JsonValue::Kind::String;
        consume('"');
        while (pos < src.size()) {
            char c = src[pos++];
            if (c == '"')
                return v;
            if (c != '\\') {
                v.strVal += c;
                continue;
            }
            if (pos >= src.size())
                break;
            char esc = src[pos++];
            switch (esc) {
              case '"': v.strVal += '"'; break;
              case '\\': v.strVal += '\\'; break;
              case '/': v.strVal += '/'; break;
              case 'b': v.strVal += '\b'; break;
              case 'f': v.strVal += '\f'; break;
              case 'n': v.strVal += '\n'; break;
              case 'r': v.strVal += '\r'; break;
              case 't': v.strVal += '\t'; break;
              case 'u': {
                if (pos + 4 > src.size()) {
                    fail("truncated \\u escape");
                    return JsonValue();
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = src[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad hex digit in \\u escape");
                        return JsonValue();
                    }
                }
                // UTF-8 encode the code point (BMP only; the
                // exporter never emits surrogate pairs).
                if (code < 0x80) {
                    v.strVal += static_cast<char>(code);
                } else if (code < 0x800) {
                    v.strVal +=
                        static_cast<char>(0xC0 | (code >> 6));
                    v.strVal +=
                        static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    v.strVal +=
                        static_cast<char>(0xE0 | (code >> 12));
                    v.strVal += static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F));
                    v.strVal +=
                        static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape character");
                return JsonValue();
            }
        }
        fail("unterminated string");
        return JsonValue();
    }

    JsonValue
    parseNumber()
    {
        size_t start = pos;
        consume('-');
        while (pos < src.size() &&
               (std::isdigit(static_cast<unsigned char>(src[pos])) ||
                src[pos] == '.' || src[pos] == 'e' ||
                src[pos] == 'E' || src[pos] == '+' ||
                src[pos] == '-'))
            ++pos;
        JsonValue v;
        v.k = JsonValue::Kind::Number;
        char *end = nullptr;
        std::string text = src.substr(start, pos - start);
        v.numVal = std::strtod(text.c_str(), &end);
        if (end == text.c_str() ||
            end != text.c_str() + text.size()) {
            fail("malformed number '" + text + "'");
            return JsonValue();
        }
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.k = JsonValue::Kind::Bool;
        if (src.compare(pos, 4, "true") == 0) {
            v.boolVal = true;
            pos += 4;
            return v;
        }
        if (src.compare(pos, 5, "false") == 0) {
            v.boolVal = false;
            pos += 5;
            return v;
        }
        fail("expected 'true' or 'false'");
        return JsonValue();
    }

    JsonValue
    parseNull()
    {
        if (src.compare(pos, 4, "null") == 0) {
            pos += 4;
            return JsonValue();
        }
        fail("expected 'null'");
        return JsonValue();
    }

    const std::string &src;
    std::string *err;
    size_t pos = 0;
};

JsonValue
JsonValue::parse(const std::string &text, std::string *error)
{
    panic_if(error == nullptr, "JsonValue::parse needs an error out");
    error->clear();
    JsonParser p(text, error);
    return p.run();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonQuote(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

} // namespace iracc
