/**
 * @file
 * Status/error reporting helpers following the gem5 logging idiom.
 *
 * Two terminating reporters are provided with distinct semantics:
 *
 *  - panic():  an internal invariant was violated -- a bug in IRACC
 *              itself, never the user's fault.  Calls std::abort() so
 *              a core/backtrace can be captured.
 *  - fatal():  the run cannot continue because of a user-facing
 *              condition (bad configuration, out-of-range parameter).
 *              Exits with status 1.
 *
 * Non-terminating reporters: warn() for suspicious-but-survivable
 * conditions and inform() for ordinary status messages.
 */

#ifndef IRACC_UTIL_LOGGING_HH
#define IRACC_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace iracc {

/** Print "panic: <msg>" with location info and abort. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print "fatal: <msg>" with location info and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print "warn: <msg>" to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by tests and benches). */
void setQuiet(bool quiet);

/** @return true when warn()/inform() are suppressed. */
bool quiet();

#define panic(...) ::iracc::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::iracc::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                            \
    do {                                                               \
        if (cond)                                                      \
            panic(__VA_ARGS__);                                        \
    } while (0)

/** fatal() when the user-facing condition is violated. */
#define fatal_if(cond, ...)                                            \
    do {                                                               \
        if (cond)                                                      \
            fatal(__VA_ARGS__);                                        \
    } while (0)

} // namespace iracc

#endif // IRACC_UTIL_LOGGING_HH
