#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace iracc {

void
Accumulator::sample(double v)
{
    ++n;
    total += v;
    totalSq += v * v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
}

void
Accumulator::merge(const Accumulator &other)
{
    n += other.n;
    total += other.total;
    totalSq += other.totalSq;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::mean() const
{
    return n ? total / static_cast<double>(n) : 0.0;
}

double
Accumulator::min() const
{
    return n ? lo : 0.0;
}

double
Accumulator::max() const
{
    return n ? hi : 0.0;
}

double
Accumulator::stddev() const
{
    if (n == 0)
        return 0.0;
    double m = mean();
    double var = totalSq / static_cast<double>(n) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : rangeLo(lo), rangeHi(hi), bins(buckets, 0)
{
    panic_if(buckets == 0, "Histogram requires at least one bucket");
    panic_if(!(lo < hi), "Histogram requires lo < hi");
}

void
Histogram::sample(double v)
{
    ++n;
    if (v < rangeLo) {
        ++below;
    } else if (v >= rangeHi) {
        ++above;
    } else {
        double frac = (v - rangeLo) / (rangeHi - rangeLo);
        size_t idx = static_cast<size_t>(frac * bins.size());
        if (idx >= bins.size())
            idx = bins.size() - 1;
        ++bins[idx];
    }
}

double
Histogram::bucketLo(size_t i) const
{
    return rangeLo + (rangeHi - rangeLo) *
        static_cast<double>(i) / static_cast<double>(bins.size());
}

double
Histogram::percentile(double frac) const
{
    panic_if(frac < 0.0 || frac > 1.0, "percentile frac out of range");
    if (n == 0)
        return rangeLo;
    uint64_t want = static_cast<uint64_t>(frac * static_cast<double>(n));
    uint64_t seen = below;
    if (seen > want)
        return rangeLo;
    double width = (rangeHi - rangeLo) / static_cast<double>(bins.size());
    for (size_t i = 0; i < bins.size(); ++i) {
        if (seen + bins[i] > want) {
            double inBucket = bins[i]
                ? static_cast<double>(want - seen) /
                  static_cast<double>(bins[i])
                : 0.0;
            return bucketLo(i) + inBucket * width;
        }
        seen += bins[i];
    }
    return rangeHi;
}

double
geomean(const std::vector<double> &values)
{
    panic_if(values.empty(), "geomean of empty set");
    double logSum = 0.0;
    for (double v : values) {
        panic_if(v <= 0.0, "geomean requires positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

} // namespace iracc
