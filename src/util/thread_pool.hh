/**
 * @file
 * Fixed-size worker pool used by the multithreaded software
 * realigners.  GATK3 "does not scale beyond 8 threads" (paper
 * Section II-A footnote); the pool lets baselines run at a configured
 * thread count so the comparison methodology matches the paper.
 */

#ifndef IRACC_UTIL_THREAD_POOL_HH
#define IRACC_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace iracc {

/**
 * A minimal task-queue thread pool.  Tasks are void() callables;
 * waitIdle() provides a barrier for fork-join usage.
 */
class ThreadPool
{
  public:
    /** @param num_threads worker count; must be >= 1 */
    explicit ThreadPool(size_t num_threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and all workers are idle. */
    void waitIdle();

    /**
     * Convenience fork-join: run fn(i) for i in [0, n) across the
     * pool and wait for completion.  Work is dealt in contiguous
     * chunks to limit queue overhead.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    size_t numThreads() const { return workers.size(); }

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::queue<std::function<void()>> tasks;
    std::mutex mtx;
    std::condition_variable taskAvailable;
    std::condition_variable allIdle;
    size_t activeTasks = 0;
    bool stopping = false;
};

} // namespace iracc

#endif // IRACC_UTIL_THREAD_POOL_HH
