/**
 * @file
 * Fixed-size worker pool used by the multithreaded software
 * realigners.  GATK3 "does not scale beyond 8 threads" (paper
 * Section II-A footnote); the pool lets baselines run at a configured
 * thread count so the comparison methodology matches the paper.
 */

#ifndef IRACC_UTIL_THREAD_POOL_HH
#define IRACC_UTIL_THREAD_POOL_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace iracc {

/**
 * Optional pool instrumentation callbacks.  The util layer cannot
 * depend on src/obs, so observability attaches through this
 * neutral struct (see obs::instrumentThreadPool); when no hooks
 * are installed -- the default -- the pool takes no timestamps and
 * the hot path is unchanged.  Callbacks run outside the pool lock
 * and must be thread-safe; install hooks only while the pool is
 * idle.
 */
struct ThreadPoolHooks
{
    /** After a task is enqueued; @p depth = queued tasks. */
    std::function<void(size_t depth)> onEnqueue;

    /**
     * After a worker dequeues a task, before running it.
     * @p wait_seconds  time the task sat in the queue
     * @p depth         tasks still queued
     */
    std::function<void(double wait_seconds, size_t depth)> onDequeue;

    /** After a task finishes; @p busy_seconds = execution time. */
    std::function<void(double busy_seconds)> onTaskDone;
};

/**
 * A minimal task-queue thread pool.  Tasks are void() callables;
 * waitIdle() provides a barrier for fork-join usage.
 */
class ThreadPool
{
  public:
    /** @param num_threads worker count; must be >= 1 */
    explicit ThreadPool(size_t num_threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and all workers are idle. */
    void waitIdle();

    /**
     * Convenience fork-join: run fn(i) for i in [0, n) across the
     * pool and wait for completion.  Work is dealt in contiguous
     * chunks to limit queue overhead.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    size_t numThreads() const { return workers.size(); }

    /**
     * Install (or clear, with nullptr) instrumentation hooks.
     * Must be called while no tasks are queued or running.
     */
    void setHooks(std::shared_ptr<const ThreadPoolHooks> hooks);

  private:
    struct QueuedTask
    {
        std::function<void()> fn;
        /** Enqueue timestamp; only stamped when hooks are set. */
        std::chrono::steady_clock::time_point enqueued;
    };

    void workerLoop();

    std::vector<std::thread> workers;
    std::queue<QueuedTask> tasks;
    std::shared_ptr<const ThreadPoolHooks> hooks;
    std::mutex mtx;
    std::condition_variable taskAvailable;
    std::condition_variable allIdle;
    size_t activeTasks = 0;
    bool stopping = false;
};

} // namespace iracc

#endif // IRACC_UTIL_THREAD_POOL_HH
