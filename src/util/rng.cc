#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace iracc {

namespace {

/** SplitMix64 step used to expand the user seed into xoshiro state. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s)
        word = splitMix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    panic_if(bound == 0, "Rng::below() requires bound > 0");
    // Lemire-style rejection to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    panic_if(lo > hi, "Rng::range() requires lo <= hi");
    return lo + static_cast<int64_t>(
        below(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::uniform()
{
    // 53 high bits give a double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::normal(double mean, double stddev)
{
    if (haveSpareNormal) {
        haveSpareNormal = false;
        return mean + stddev * spareNormal;
    }
    double u, v, sq;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        sq = u * u + v * v;
    } while (sq >= 1.0 || sq == 0.0);
    double mul = std::sqrt(-2.0 * std::log(sq) / sq);
    spareNormal = v * mul;
    haveSpareNormal = true;
    return mean + stddev * u * mul;
}

uint64_t
Rng::geometric(double p)
{
    panic_if(p <= 0.0 || p > 1.0, "geometric() requires p in (0, 1]");
    if (p == 1.0)
        return 0;
    double u = uniform();
    return static_cast<uint64_t>(
        std::floor(std::log1p(-u) / std::log1p(-p)));
}

uint64_t
Rng::zipf(uint64_t n, double s)
{
    panic_if(n == 0, "zipf() requires n > 0");
    panic_if(s <= 1.0, "zipf() rejection sampler requires s > 1");
    // Rejection-inversion sampling (Hormann & Derflinger) is overkill
    // for the sizes we use; a simple inverse-CDF walk over a cached
    // normalizer would be O(n) per sample.  Instead use the standard
    // rejection method with the integral envelope, O(1) expected.
    if (n == 1)
        return 1;
    const double b = std::pow(2.0, s - 1.0);
    for (;;) {
        double u = uniform();
        double v = uniform();
        double x = std::floor(std::pow(u, -1.0 / (s - 1.0)));
        if (x > static_cast<double>(n) || x < 1.0)
            continue;
        double t = std::pow(1.0 + 1.0 / x, s - 1.0);
        if (v * x * (t - 1.0) / (b - 1.0) <= t / b)
            return static_cast<uint64_t>(x);
    }
}

Rng
Rng::fork()
{
    // A fresh generator seeded from this one's stream is independent
    // enough for workload-synthesis purposes.
    return Rng(next());
}

Rng
Rng::stream(uint64_t seed, uint64_t a, uint64_t b)
{
    // Mix the stream coordinates into the seed one SplitMix64 step
    // at a time; the constructor then expands the result into full
    // xoshiro state.  Purely functional: no shared state, so the
    // same (seed, a, b) triple yields the same stream on every
    // thread and in any creation order.
    uint64_t x = seed;
    uint64_t mixed = splitMix64(x);
    x ^= a * 0xD6E8FEB86659FD93ull;
    mixed ^= splitMix64(x);
    x ^= b * 0xC2B2AE3D27D4EB4Full;
    mixed ^= splitMix64(x);
    return Rng(mixed);
}

} // namespace iracc
