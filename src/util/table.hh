/**
 * @file
 * Plain-text table rendering for the benchmark harness.  Every bench
 * binary prints the rows/series of the paper table or figure it
 * regenerates; Table gives them a consistent, aligned format.
 */

#ifndef IRACC_UTIL_TABLE_HH
#define IRACC_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace iracc {

/**
 * Column-aligned text table.  Cells are strings; helpers format
 * numbers with a fixed precision.
 */
class Table
{
  public:
    /** @param header column titles */
    explicit Table(std::vector<std::string> header);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns and a separator under the header. */
    std::string render() const;

    /** Column titles (for machine-readable export). */
    const std::vector<std::string> &header() const { return head; }

    /** Appended rows, in insertion order. */
    const std::vector<std::vector<std::string>> &
    rowData() const
    {
        return rows;
    }

    /** Render and write to stdout. */
    void print() const;

    /** Format a double with the given number of decimals. */
    static std::string num(double v, int decimals = 2);

    /** Format a value as a percentage string, e.g. "58.3%". */
    static std::string pct(double fraction, int decimals = 1);

    /** Format a speedup, e.g. "81.3x". */
    static std::string speedup(double v, int decimals = 1);

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace iracc

#endif // IRACC_UTIL_TABLE_HH
