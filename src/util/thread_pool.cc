#include "util/thread_pool.hh"

#include <algorithm>

#include "util/logging.hh"

namespace iracc {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

ThreadPool::ThreadPool(size_t num_threads)
{
    panic_if(num_threads == 0, "ThreadPool requires >= 1 thread");
    workers.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    taskAvailable.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::setHooks(std::shared_ptr<const ThreadPoolHooks> h)
{
    std::lock_guard<std::mutex> lock(mtx);
    panic_if(!tasks.empty() || activeTasks != 0,
             "ThreadPool::setHooks requires an idle pool");
    hooks = std::move(h);
}

void
ThreadPool::submit(std::function<void()> task)
{
    std::shared_ptr<const ThreadPoolHooks> h;
    size_t depth = 0;
    {
        std::lock_guard<std::mutex> lock(mtx);
        QueuedTask qt;
        qt.fn = std::move(task);
        if (hooks)
            qt.enqueued = std::chrono::steady_clock::now();
        tasks.push(std::move(qt));
        h = hooks;
        depth = tasks.size();
    }
    taskAvailable.notify_one();
    if (h && h->onEnqueue)
        h->onEnqueue(depth);
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mtx);
    allIdle.wait(lock, [this] {
        return tasks.empty() && activeTasks == 0;
    });
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    size_t chunks = std::min(n, numThreads() * 4);
    size_t per = (n + chunks - 1) / chunks;
    for (size_t c = 0; c < chunks; ++c) {
        size_t begin = c * per;
        size_t end = std::min(n, begin + per);
        if (begin >= end)
            break;
        submit([&fn, begin, end] {
            for (size_t i = begin; i < end; ++i)
                fn(i);
        });
    }
    waitIdle();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        QueuedTask task;
        std::shared_ptr<const ThreadPoolHooks> h;
        size_t depth = 0;
        {
            std::unique_lock<std::mutex> lock(mtx);
            taskAvailable.wait(lock, [this] {
                return stopping || !tasks.empty();
            });
            if (stopping && tasks.empty())
                return;
            task = std::move(tasks.front());
            tasks.pop();
            ++activeTasks;
            h = hooks;
            depth = tasks.size();
        }
        std::chrono::steady_clock::time_point started;
        if (h) {
            started = std::chrono::steady_clock::now();
            if (h->onDequeue) {
                h->onDequeue(std::chrono::duration<double>(
                                 started - task.enqueued)
                                 .count(),
                             depth);
            }
        }
        task.fn();
        if (h && h->onTaskDone)
            h->onTaskDone(secondsSince(started));
        {
            std::lock_guard<std::mutex> lock(mtx);
            --activeTasks;
            if (tasks.empty() && activeTasks == 0)
                allIdle.notify_all();
        }
    }
}

} // namespace iracc
