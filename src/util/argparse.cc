#include "util/argparse.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace iracc {

void
usageError(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "usage error: ");
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    va_end(args);
    std::exit(2);
}

bool
parseInt64(const std::string &text, int64_t *out)
{
    // strtoll-family parsers skip leading whitespace; the whole-
    // token contract does not.
    if (text.empty() || std::isspace(
                            static_cast<unsigned char>(text[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(text.c_str(), &end, 0);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return false;
    *out = static_cast<int64_t>(v);
    return true;
}

bool
parseUint64(const std::string &text, uint64_t *out)
{
    if (text.empty() || text[0] == '-' ||
        std::isspace(static_cast<unsigned char>(text[0]))) {
        return false;
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return false;
    *out = static_cast<uint64_t>(v);
    return true;
}

bool
parseDouble(const std::string &text, double *out)
{
    if (text.empty() || std::isspace(
                            static_cast<unsigned char>(text[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (errno == ERANGE || end != text.c_str() + text.size() ||
        !std::isfinite(v)) {
        return false;
    }
    *out = v;
    return true;
}

ArgParser::ArgParser(int argc, char **argv, int first,
                     std::string tool)
    : toolName(std::move(tool))
{
    for (int i = first; i < argc; ++i) {
        std::string key = argv[i];
        if (key.rfind("--", 0) != 0 || key.size() == 2) {
            usageError("%s: expected --option, got '%s'",
                       toolName.c_str(), key.c_str());
        }
        // A bare switch -- last token, or followed by the next
        // --option -- reads as "1" (e.g. "--wait"); everything
        // else is a --key value pair.
        if (i + 1 >= argc ||
            std::string(argv[i + 1]).rfind("--", 0) == 0) {
            values[key] = "1";
        } else {
            values[key] = argv[++i];
        }
    }
}

bool
ArgParser::has(const std::string &key) const
{
    return values.count(key) != 0;
}

std::string
ArgParser::get(const std::string &key, const std::string &dflt) const
{
    auto it = values.find(key);
    return it == values.end() ? dflt : it->second;
}

int64_t
ArgParser::getInt(const std::string &key, int64_t dflt,
                  int64_t min_value, int64_t max_value) const
{
    auto it = values.find(key);
    if (it == values.end())
        return dflt;
    int64_t v = 0;
    if (!parseInt64(it->second, &v)) {
        usageError("%s: %s expects an integer, got '%s'",
                   toolName.c_str(), key.c_str(),
                   it->second.c_str());
    }
    if (v < min_value || v > max_value) {
        usageError("%s: %s %lld out of range [%lld, %lld]",
                   toolName.c_str(), key.c_str(),
                   static_cast<long long>(v),
                   static_cast<long long>(min_value),
                   static_cast<long long>(max_value));
    }
    return v;
}

uint64_t
ArgParser::getUint(const std::string &key, uint64_t dflt,
                   uint64_t min_value, uint64_t max_value) const
{
    auto it = values.find(key);
    if (it == values.end())
        return dflt;
    uint64_t v = 0;
    if (!parseUint64(it->second, &v)) {
        usageError("%s: %s expects a non-negative integer, got "
                   "'%s'",
                   toolName.c_str(), key.c_str(),
                   it->second.c_str());
    }
    if (v < min_value || v > max_value) {
        usageError("%s: %s %llu out of range [%llu, %llu]",
                   toolName.c_str(), key.c_str(),
                   static_cast<unsigned long long>(v),
                   static_cast<unsigned long long>(min_value),
                   static_cast<unsigned long long>(max_value));
    }
    return v;
}

double
ArgParser::getDouble(const std::string &key, double dflt,
                     double min_value, double max_value) const
{
    auto it = values.find(key);
    if (it == values.end())
        return dflt;
    double v = 0.0;
    if (!parseDouble(it->second, &v)) {
        usageError("%s: %s expects a number, got '%s'",
                   toolName.c_str(), key.c_str(),
                   it->second.c_str());
    }
    if (v < min_value || v > max_value) {
        usageError("%s: %s %g out of range [%g, %g]",
                   toolName.c_str(), key.c_str(), v, min_value,
                   max_value);
    }
    return v;
}

bool
ArgParser::getFlag(const std::string &key, bool dflt) const
{
    int64_t v = getInt(key, dflt ? 1 : 0, 0, 1);
    return v != 0;
}

} // namespace iracc
