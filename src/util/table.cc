#include "util/table.hh"

#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace iracc {

Table::Table(std::vector<std::string> header) : head(std::move(header))
{
    panic_if(head.empty(), "Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    panic_if(row.size() != head.size(),
             "Table row width %zu != header width %zu",
             row.size(), head.size());
    rows.push_back(std::move(row));
}

std::string
Table::render() const
{
    std::vector<size_t> width(head.size());
    for (size_t c = 0; c < head.size(); ++c)
        width[c] = head[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            out << cells[c];
            if (c + 1 < cells.size())
                out << std::string(width[c] - cells[c].size() + 2, ' ');
        }
        out << '\n';
    };
    emit(head);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit(row);
    return out.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
Table::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::pct(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals,
                  fraction * 100.0);
    return buf;
}

std::string
Table::speedup(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", decimals, v);
    return buf;
}

} // namespace iracc
