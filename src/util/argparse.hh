/**
 * @file
 * Strict command-line argument parsing shared by every tool.
 *
 * The original CLIs parsed numeric flags with std::atoi-family
 * calls, which silently turn garbage into 0 ("--cards abc") and
 * accept out-of-range values ("--job-threads -1") -- both then
 * reached CardFleet/ThreadPool unvalidated.  This helper parses
 * integers and doubles strictly (whole token must convert, no
 * overflow) and range-checks them, reporting violations through
 * usageError(), which exits with status 2 -- the conventional
 * "usage error" code, distinct from fatal()'s 1 and the realign
 * health codes 3/4.
 *
 * Two layers:
 *  - free functions parseInt64 / parseUint64 / parseDouble return
 *    false on malformed input (for tools with hand-rolled flag
 *    loops, and for unit tests);
 *  - ArgParser, a --key value bag matching the iracc_cli idiom,
 *    whose getInt/getUint/getDouble validate and range-check every
 *    user-supplied value.
 */

#ifndef IRACC_UTIL_ARGPARSE_HH
#define IRACC_UTIL_ARGPARSE_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>

namespace iracc {

/** Print "usage error: <msg>" to stderr and exit(2). */
[[noreturn]] void usageError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Parse the *entire* token as a base-10 (or 0x-prefixed) signed
 * integer.  Leading/trailing junk, an empty token, and overflow
 * all fail.
 */
bool parseInt64(const std::string &text, int64_t *out);

/** parseInt64 for unsigned values; a leading '-' fails. */
bool parseUint64(const std::string &text, uint64_t *out);

/** Parse the entire token as a finite double. */
bool parseDouble(const std::string &text, double *out);

/**
 * A --key value argument bag with strict numeric accessors.
 * Construction fails through usageError() for non---option tokens.
 * Keys are looked up with their leading dashes ("--port").  A bare
 * switch -- an option that is the last token or is followed by the
 * next --option -- reads as "1", so "--wait" and "--wait 1" are
 * equivalent.
 */
class ArgParser
{
  public:
    /**
     * @param argc / @p argv the program arguments
     * @param first index of the first option token
     * @param tool  name printed in usage errors
     */
    ArgParser(int argc, char **argv, int first,
              std::string tool = "");

    bool has(const std::string &key) const;

    /** Raw string lookup (no validation). */
    std::string get(const std::string &key,
                    const std::string &dflt) const;

    /**
     * Integer flag with an inclusive range.  Malformed or
     * out-of-range values report the flag name and the accepted
     * range through usageError() (exit 2).
     */
    int64_t getInt(const std::string &key, int64_t dflt,
                   int64_t min_value = std::numeric_limits<
                       int64_t>::min(),
                   int64_t max_value = std::numeric_limits<
                       int64_t>::max()) const;

    /** getInt for uint64 flags (seeds). */
    uint64_t getUint(const std::string &key, uint64_t dflt,
                     uint64_t min_value = 0,
                     uint64_t max_value = std::numeric_limits<
                         uint64_t>::max()) const;

    /** Double flag with an inclusive range. */
    double getDouble(const std::string &key, double dflt,
                     double min_value =
                         -std::numeric_limits<double>::infinity(),
                     double max_value =
                         std::numeric_limits<double>::infinity())
        const;

    /** 0/1 flag; any other value is a usage error. */
    bool getFlag(const std::string &key, bool dflt) const;

  private:
    std::map<std::string, std::string> values;
    std::string toolName;
};

} // namespace iracc

#endif // IRACC_UTIL_ARGPARSE_HH
