/**
 * @file
 * Wall-clock timing helpers for the software baselines and the
 * pipeline stage breakdowns.
 */

#ifndef IRACC_UTIL_TIMER_HH
#define IRACC_UTIL_TIMER_HH

#include <chrono>

namespace iracc {

/** Simple monotonic wall-clock stopwatch. */
class Timer
{
  public:
    Timer() { restart(); }

    /** Reset the start point to now. */
    void restart() { start = Clock::now(); }

    /** @return seconds elapsed since construction or restart(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    }

    /** @return milliseconds elapsed. */
    double ms() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start;
};

/** Accumulates elapsed time across multiple start/stop windows. */
class StageTimer
{
  public:
    void
    start()
    {
        running = true;
        t.restart();
    }

    void
    stop()
    {
        if (running)
            total += t.seconds();
        running = false;
    }

    /** @return total seconds across all completed windows. */
    double seconds() const { return total; }

    void reset() { total = 0.0; running = false; }

  private:
    Timer t;
    double total = 0.0;
    bool running = false;
};

} // namespace iracc

#endif // IRACC_UTIL_TIMER_HH
