/**
 * @file
 * Lightweight statistics containers used by the simulator and the
 * benchmark harness: a scalar accumulator with moments, and a
 * fixed-bucket histogram.  Modeled on the spirit of gem5's Stats
 * package, stripped to what IRACC needs.
 */

#ifndef IRACC_UTIL_STATS_HH
#define IRACC_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace iracc {

/**
 * Accumulates samples and exposes count/sum/mean/min/max/stddev.
 */
class Accumulator
{
  public:
    /** Record one sample. */
    void sample(double v);

    /** Merge another accumulator into this one. */
    void merge(const Accumulator &other);

    /** Discard all samples. */
    void reset();

    uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const;
    double min() const;
    double max() const;
    /** Population standard deviation. */
    double stddev() const;

  private:
    uint64_t n = 0;
    double total = 0.0;
    double totalSq = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/**
 * Histogram over [lo, hi) with linear buckets plus underflow and
 * overflow counters.
 */
class Histogram
{
  public:
    /**
     * @param lo       inclusive lower bound of the bucketed range
     * @param hi       exclusive upper bound of the bucketed range
     * @param buckets  number of equal-width buckets, > 0
     */
    Histogram(double lo, double hi, size_t buckets);

    /** Record one sample. */
    void sample(double v);

    uint64_t count() const { return n; }
    uint64_t underflow() const { return below; }
    uint64_t overflow() const { return above; }
    size_t buckets() const { return bins.size(); }
    uint64_t bucketCount(size_t i) const { return bins.at(i); }
    /** Inclusive lower edge of bucket i. */
    double bucketLo(size_t i) const;

    /**
     * @return the value below which the given fraction of samples
     * fall, linearly interpolated within a bucket.
     */
    double percentile(double frac) const;

  private:
    double rangeLo;
    double rangeHi;
    std::vector<uint64_t> bins;
    uint64_t below = 0;
    uint64_t above = 0;
    uint64_t n = 0;
};

/** Geometric mean of a set of strictly positive values. */
double geomean(const std::vector<double> &values);

} // namespace iracc

#endif // IRACC_UTIL_STATS_HH
