#include "fault/fault.hh"

#include <array>
#include <sstream>

#include "obs/flight_recorder.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace iracc {

namespace {

constexpr std::array<const char *, kNumFaultKinds> kKindNames = {
    "corrupt-write", "stall", "unit-hang", "drop-response",
    "dma-drop"};

bool
parseKind(const std::string &token, FaultKind *kind)
{
    for (size_t i = 0; i < kKindNames.size(); ++i) {
        if (token == kKindNames[i]) {
            *kind = static_cast<FaultKind>(i);
            return true;
        }
    }
    return false;
}

uint64_t
parseNumber(const std::string &s, const char *what)
{
    fatal_if(s.empty(), "fault plan: empty %s", what);
    for (char c : s)
        fatal_if(c < '0' || c > '9',
                 "fault plan: malformed %s '%s'", what, s.c_str());
    return std::stoull(s);
}

} // anonymous namespace

const char *
faultKindName(FaultKind kind)
{
    size_t i = static_cast<size_t>(kind);
    panic_if(i >= kKindNames.size(), "invalid FaultKind %zu", i);
    return kKindNames[i];
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    for (size_t i = 0; i < specs.size(); ++i) {
        const FaultSpec &s = specs[i];
        if (i != 0)
            os << ';';
        os << faultKindName(s.kind);
        std::vector<std::string> kv;
        if (s.unit >= 0)
            kv.push_back("unit=" + std::to_string(s.unit));
        if (!s.channel.empty())
            kv.push_back("channel=" + s.channel);
        if (s.kind == FaultKind::CorruptWrite && s.bit != 0)
            kv.push_back("bit=" + std::to_string(s.bit));
        if (s.kind == FaultKind::ChannelStall)
            kv.push_back("cycles=" + std::to_string(s.stallCycles));
        if (s.repeat != 0)
            kv.push_back("repeat=" + std::to_string(s.repeat));
        for (size_t k = 0; k < kv.size(); ++k)
            os << (k == 0 ? ':' : ',') << kv[k];
        os << '@' << s.occurrence;
    }
    return os.str();
}

FaultPlan
FaultPlan::parse(const std::string &text)
{
    FaultPlan plan;
    std::istringstream specs(text);
    std::string item;
    while (std::getline(specs, item, ';')) {
        if (item.empty())
            continue;
        FaultSpec spec;

        std::string body = item;
        size_t at = body.rfind('@');
        if (at != std::string::npos) {
            spec.occurrence = parseNumber(body.substr(at + 1),
                                          "occurrence");
            fatal_if(spec.occurrence == 0,
                     "fault plan: occurrence must be >= 1");
            body = body.substr(0, at);
        }
        size_t colon = body.find(':');
        std::string kind_tok = body.substr(0, colon);
        fatal_if(!parseKind(kind_tok, &spec.kind),
                 "fault plan: unknown fault kind '%s'",
                 kind_tok.c_str());
        if (colon != std::string::npos) {
            std::istringstream kvs(body.substr(colon + 1));
            std::string kv;
            while (std::getline(kvs, kv, ',')) {
                size_t eq = kv.find('=');
                fatal_if(eq == std::string::npos,
                         "fault plan: malformed option '%s'",
                         kv.c_str());
                std::string key = kv.substr(0, eq);
                std::string value = kv.substr(eq + 1);
                if (key == "unit") {
                    spec.unit = static_cast<int32_t>(
                        parseNumber(value, "unit"));
                } else if (key == "channel") {
                    spec.channel = value;
                } else if (key == "bit") {
                    spec.bit = static_cast<uint32_t>(
                        parseNumber(value, "bit"));
                } else if (key == "cycles") {
                    spec.stallCycles = parseNumber(value, "cycles");
                } else if (key == "repeat") {
                    spec.repeat = parseNumber(value, "repeat");
                } else {
                    fatal("fault plan: unknown option '%s'",
                          key.c_str());
                }
            }
        }
        plan.specs.push_back(std::move(spec));
    }
    return plan;
}

FaultPlan
FaultPlan::random(uint64_t seed)
{
    // A distinct stream from the workload generators so the same
    // fuzz seed drives independent workload and fault randomness.
    Rng rng = Rng::stream(seed, 0xFA017EDull, 0x1213ull);
    FaultPlan plan;
    size_t n = 1 + rng.below(3);
    for (size_t i = 0; i < n; ++i) {
        FaultSpec spec;
        spec.kind = static_cast<FaultKind>(
            rng.below(kNumFaultKinds));
        spec.occurrence = 1 + rng.below(24);
        if (rng.chance(0.2))
            spec.repeat = 1 + rng.below(8);
        switch (spec.kind) {
          case FaultKind::CorruptWrite:
            spec.bit = static_cast<uint32_t>(rng.below(64));
            break;
          case FaultKind::ChannelStall:
            spec.stallCycles = 1ull << (6 + rng.below(16));
            if (rng.chance(0.5))
                spec.channel = rng.chance(0.5) ? "ddr0" : "pcie-dma";
            break;
          case FaultKind::UnitHang:
          case FaultKind::DropResponse:
            if (rng.chance(0.5))
                spec.unit = static_cast<int32_t>(rng.below(32));
            break;
          case FaultKind::DmaDrop:
            break;
        }
        plan.specs.push_back(std::move(spec));
    }
    return plan;
}

FaultInjector::FaultInjector(FaultPlan plan)
{
    armed.reserve(plan.specs.size());
    for (FaultSpec &spec : plan.specs) {
        // Intern the spec's canonical text once so the recorder
        // event is a fixed-size binary record.
        FaultPlan one;
        one.specs.push_back(spec);
        uint32_t textId =
            obs::FlightRecorder::instance().intern(one.describe());
        armed.push_back(Armed{std::move(spec), 0, textId});
    }
}

void
FaultInjector::setObsContext(int32_t card,
                             std::function<uint64_t()> now)
{
    obsCard = card;
    obsNow = std::move(now);
}

void
FaultInjector::noteInjected(const Armed &a)
{
    obs::frEmit(obs::FrSeverity::Warn, obs::FrCategory::Fault,
                obs::FrCode::FaultInjected,
                obsNow ? obsNow() : 0, obsCard,
                static_cast<uint64_t>(&a - armed.data()),
                static_cast<uint64_t>(a.spec.kind), a.seen,
                a.textId);
}

bool
FaultInjector::fires(Armed &a)
{
    ++a.seen;
    if (a.seen == a.spec.occurrence)
        return true;
    if (a.spec.repeat != 0 && a.seen > a.spec.occurrence &&
        (a.seen - a.spec.occurrence) % a.spec.repeat == 0)
        return true;
    return false;
}

bool
FaultInjector::corruptWrite(uint64_t addr, uint64_t len,
                            uint64_t *byte_off, uint8_t *bit_mask)
{
    (void)addr;
    if (len == 0)
        return false;
    for (Armed &a : armed) {
        if (a.spec.kind != FaultKind::CorruptWrite)
            continue;
        if (!fires(a))
            continue;
        uint64_t bit = a.spec.bit % (len * 8);
        *byte_off = bit / 8;
        *bit_mask = static_cast<uint8_t>(1u << (bit % 8));
        ++counts[static_cast<size_t>(FaultKind::CorruptWrite)];
        noteInjected(a);
        return true;
    }
    return false;
}

uint64_t
FaultInjector::stallCycles(const std::string &channel)
{
    uint64_t extra = 0;
    for (Armed &a : armed) {
        if (a.spec.kind != FaultKind::ChannelStall)
            continue;
        if (!a.spec.channel.empty() && a.spec.channel != channel)
            continue;
        if (!fires(a))
            continue;
        extra += a.spec.stallCycles;
        ++counts[static_cast<size_t>(FaultKind::ChannelStall)];
        noteInjected(a);
    }
    return extra;
}

bool
FaultInjector::hangUnit(uint32_t unit)
{
    bool hit = false;
    for (Armed &a : armed) {
        if (a.spec.kind != FaultKind::UnitHang)
            continue;
        if (a.spec.unit >= 0 &&
            a.spec.unit != static_cast<int32_t>(unit))
            continue;
        if (!fires(a))
            continue;
        hit = true;
        ++counts[static_cast<size_t>(FaultKind::UnitHang)];
        noteInjected(a);
    }
    return hit;
}

bool
FaultInjector::dropResponse(uint32_t unit)
{
    bool hit = false;
    for (Armed &a : armed) {
        if (a.spec.kind != FaultKind::DropResponse)
            continue;
        if (a.spec.unit >= 0 &&
            a.spec.unit != static_cast<int32_t>(unit))
            continue;
        if (!fires(a))
            continue;
        hit = true;
        ++counts[static_cast<size_t>(FaultKind::DropResponse)];
        noteInjected(a);
    }
    return hit;
}

bool
FaultInjector::dropDma()
{
    bool hit = false;
    for (Armed &a : armed) {
        if (a.spec.kind != FaultKind::DmaDrop)
            continue;
        if (!fires(a))
            continue;
        hit = true;
        ++counts[static_cast<size_t>(FaultKind::DmaDrop)];
        noteInjected(a);
    }
    return hit;
}

uint64_t
FaultInjector::injected(FaultKind kind) const
{
    return counts[static_cast<size_t>(kind)];
}

uint64_t
FaultInjector::totalInjected() const
{
    uint64_t total = 0;
    for (uint64_t c : counts)
        total += c;
    return total;
}

const char *
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::Ok:
        return "ok";
      case RunStatus::Degraded:
        return "degraded";
      case RunStatus::Failed:
        return "failed";
    }
    panic("invalid RunStatus");
}

uint32_t
crc32(const void *data, size_t len, uint32_t seed)
{
    // Nibble-driven CRC-32 (polynomial 0xEDB88320): small table,
    // identical stream on every platform.
    static constexpr uint32_t kTable[16] = {
        0x00000000, 0x1DB71064, 0x3B6E20C8, 0x26D930AC,
        0x76DC4190, 0x6B6B51F4, 0x4DB26158, 0x5005713C,
        0xEDB88320, 0xF00F9344, 0xD6D6A3E8, 0xCB61B38C,
        0x9B64C2B0, 0x86D3D2D4, 0xA00AE278, 0xBDBDF21C};
    uint32_t crc = ~seed;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < len; ++i) {
        crc ^= p[i];
        crc = (crc >> 4) ^ kTable[crc & 0xF];
        crc = (crc >> 4) ^ kTable[crc & 0xF];
    }
    return ~crc;
}

} // namespace iracc
