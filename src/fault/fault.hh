/**
 * @file
 * Deterministic fault injection for the simulated accelerator.
 *
 * A FaultPlan is a seeded, fully reproducible schedule of hardware
 * misbehaviour: flipped bits in device-memory writes, stalled
 * shared channels, IR units that hang mid-target, completion
 * responses that never arrive, and host DMA bursts that vanish.
 * The simulator consults a FaultInjector at well-defined hook
 * points (accel/device_memory, accel/memory, accel/ir_unit,
 * accel/fpga_system); a null injector costs one pointer test, so
 * the fault-free hot path is unchanged.
 *
 * Faults are addressed by *occurrence*: the Nth event matching a
 * spec's filters fires the fault.  Because the event-driven
 * simulation is bit-reproducible, occurrence counting makes every
 * fault schedule replayable from its textual form -- which is what
 * lets tools/iracc_diff minimize a fault-induced divergence into a
 * committed corpus case.
 *
 * Plan text format (parse()/describe() round-trip exactly):
 *
 *   spec[;spec...]
 *   spec := kind[:key=value[,key=value...]][@occurrence]
 *   kind := corrupt-write | stall | unit-hang | drop-response
 *           | dma-drop
 *   keys := unit=N        (unit-hang / drop-response filter)
 *           channel=NAME  (stall filter, e.g. ddr0, pcie-dma)
 *           bit=N         (corrupt-write: bit index into payload)
 *           cycles=N      (stall magnitude)
 *           repeat=N      (re-fire every N matching events after
 *                          the first; 0 = fire once)
 *
 *   e.g. "corrupt-write:bit=5@3;unit-hang:unit=2@1"
 */

#ifndef IRACC_FAULT_FAULT_HH
#define IRACC_FAULT_FAULT_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace iracc {

/** The modeled hardware failure modes. */
enum class FaultKind : uint8_t {
    CorruptWrite, ///< flip one bit of a device-memory write payload
    ChannelStall, ///< add latency to one shared-channel transfer
    UnitHang,     ///< unit accepts ir_start, then never progresses
    DropResponse, ///< outputs written, completion response lost
    DmaDrop,      ///< host-to-device DMA burst never completes
};

/** Number of FaultKind values (for per-kind counter arrays). */
constexpr size_t kNumFaultKinds = 5;

/** Stable text name of a kind (the plan-format token). */
const char *faultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::CorruptWrite;

    /** Fires on the Nth matching event, 1-based. */
    uint64_t occurrence = 1;

    /** Re-fire every `repeat` matching events after the first
     *  firing; 0 = fire exactly once. */
    uint64_t repeat = 0;

    /** UnitHang/DropResponse: restrict to one unit (-1 = any). */
    int32_t unit = -1;

    /** ChannelStall: restrict to one channel name ("" = any). */
    std::string channel;

    /** CorruptWrite: bit index, folded into the payload length. */
    uint32_t bit = 0;

    /** ChannelStall: extra completion latency in cycles. */
    uint64_t stallCycles = 10000;
};

/** A deterministic, serializable schedule of faults. */
struct FaultPlan
{
    std::vector<FaultSpec> specs;

    bool empty() const { return specs.empty(); }

    /** Canonical text form (parse() round-trips it exactly). */
    std::string describe() const;

    /** Parse the text form; fatal() on malformed input. */
    static FaultPlan parse(const std::string &text);

    /**
     * A seeded random schedule of 1-3 faults for fuzzing
     * (tools/iracc_diff --fault-seeds).  Pure function of the seed.
     */
    static FaultPlan random(uint64_t seed);
};

/**
 * Runtime of one FaultPlan: per-spec occurrence counters plus
 * per-kind injected totals.  One injector serves one FpgaSystem
 * instance (one contig); all hooks run on the single-threaded
 * event loop, so no locking is needed.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan);

    /**
     * Device-memory write hook.  @return true when this write is
     * corrupted; *byte_off (< len) and *bit_mask describe the flip
     * the memory model must apply to the stored bytes.
     */
    bool corruptWrite(uint64_t addr, uint64_t len,
                      uint64_t *byte_off, uint8_t *bit_mask);

    /** Shared-channel hook: extra latency for this transfer. */
    uint64_t stallCycles(const std::string &channel);

    /** @return true when unit @p unit must hang at ir_start. */
    bool hangUnit(uint32_t unit);

    /** @return true when unit @p unit's response must be lost. */
    bool dropResponse(uint32_t unit);

    /** @return true when a host DMA burst must vanish. */
    bool dropDma();

    /** Faults injected of one kind so far. */
    uint64_t injected(FaultKind kind) const;

    /** Faults injected across all kinds. */
    uint64_t totalInjected() const;

    /**
     * Flight-recorder coordinates: the card this injector serves
     * and a cycle-domain clock (usually the owning FpgaSystem's
     * now()).  Every injected fault is then recorded with its spec
     * index, occurrence number, and canonical spec text.
     */
    void setObsContext(int32_t card,
                       std::function<uint64_t()> now);

  private:
    struct Armed
    {
        FaultSpec spec;
        uint64_t seen = 0;    ///< matching events observed
        uint32_t textId = 0;  ///< interned canonical spec text
    };

    /** Emit the flight-recorder event for a fired spec. */
    void noteInjected(const Armed &a);

    /** Occurrence bookkeeping shared by every hook. */
    bool fires(Armed &a);

    std::vector<Armed> armed;
    uint64_t counts[kNumFaultKinds] = {};
    int32_t obsCard = -1;
    std::function<uint64_t()> obsNow;
};

/**
 * CRC-32 (IEEE 802.3, reflected) over a byte range.  The hardened
 * execution path checksums marshalled input images and output
 * buffers with it, modeling the integrity unit a deployed design
 * would bolt onto the DMA engine and MemWriters.
 */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

/**
 * Health of one run (contig or whole job) under the hardened
 * execution path.  Ordered by severity so results aggregate with
 * worseStatus().
 */
enum class RunStatus : uint8_t {
    Ok,       ///< no recovery needed (absorbed stalls still Ok)
    Degraded, ///< every target correct, but recovery was exercised
    Failed,   ///< >= 1 target unrecoverable (left unrealigned)
};

/** Stable display name ("ok" / "degraded" / "failed"). */
const char *runStatusName(RunStatus status);

/** The more severe of two statuses. */
inline RunStatus
worseStatus(RunStatus a, RunStatus b)
{
    return a > b ? a : b;
}

/**
 * Counters of every detection/recovery event in one hardened run.
 * Exported as `fault.*` metrics by the contig pipeline (see
 * docs/ROBUSTNESS.md for the exact state machine).
 */
struct RecoveryStats
{
    /** Faults the injector actually fired (all kinds). */
    uint64_t faultsInjected = 0;

    /** Per-kind breakdown of faultsInjected (FaultKind order). */
    uint64_t faultsByKind[kNumFaultKinds] = {};

    /** Input-image CRC mismatches caught before ir_start. */
    uint64_t checksumInputCatches = 0;

    /** Output-buffer CRC mismatches caught at the response. */
    uint64_t checksumOutputCatches = 0;

    /** Targets reclaimed by the watchdog (hang / lost response /
     *  vanished DMA burst). */
    uint64_t watchdogCatches = 0;

    /** Hardware re-dispatches after a failed attempt. */
    uint64_t retries = 0;

    /** Targets whose retry produced a verified result. */
    uint64_t retrySuccesses = 0;

    /** Targets resolved by the host-side datapath model. */
    uint64_t softwareFallbacks = 0;

    /** Units retired (wedged, or over the strike threshold). */
    uint64_t quarantinedUnits = 0;

    /** Fleet: cards whose remaining work migrated because every
     *  unit on the card was quarantined. */
    uint64_t quarantinedCards = 0;

    /** Fleet: targets moved off a wedged card onto another. */
    uint64_t migratedTargets = 0;

    /** Events that arrived for an already-abandoned attempt. */
    uint64_t staleResponses = 0;

    /** Targets left unresolved (no-op decision applied). */
    uint64_t failedTargets = 0;

    /** True when any recovery machinery fired (not mere stalls). */
    bool
    anyRecovery() const
    {
        return checksumInputCatches || checksumOutputCatches ||
               watchdogCatches || retries || softwareFallbacks ||
               quarantinedUnits || quarantinedCards ||
               migratedTargets || failedTargets;
    }

    void
    merge(const RecoveryStats &o)
    {
        faultsInjected += o.faultsInjected;
        for (size_t k = 0; k < kNumFaultKinds; ++k)
            faultsByKind[k] += o.faultsByKind[k];
        checksumInputCatches += o.checksumInputCatches;
        checksumOutputCatches += o.checksumOutputCatches;
        watchdogCatches += o.watchdogCatches;
        retries += o.retries;
        retrySuccesses += o.retrySuccesses;
        softwareFallbacks += o.softwareFallbacks;
        quarantinedUnits += o.quarantinedUnits;
        quarantinedCards += o.quarantinedCards;
        migratedTargets += o.migratedTargets;
        staleResponses += o.staleResponses;
        failedTargets += o.failedTargets;
    }
};

/** Knobs of the hardened execution path (host/hardened_executor). */
struct HardenPolicy
{
    /** Verify input images against a device readback before
     *  ir_start. */
    bool verifyInputs = true;

    /** Verify output buffers against the response's bytes. */
    bool verifyOutputs = true;

    /** Hardware attempts per target before falling back. */
    uint32_t maxAttempts = 3;

    /** Output-corruption strikes before a unit is quarantined
     *  (wedged units are quarantined immediately). */
    uint32_t quarantineThreshold = 2;

    /** Resolve exhausted targets on the host datapath model; when
     *  false they fail (no-op decision, RunStatus::Failed). */
    bool softwareFallback = true;

    /** Watchdog budget: base cycles per dispatched round... */
    uint64_t watchdogBaseCycles = 1ull << 24;

    /** ...plus this many cycles per in-flight target. */
    uint64_t watchdogPerTargetCycles = 1ull << 24;
};

} // namespace iracc

#endif // IRACC_FAULT_FAULT_HH
