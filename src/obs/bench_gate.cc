#include "obs/bench_gate.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "util/json.hh"

namespace iracc {
namespace obs {

namespace {

/** Formats a value compactly for finding details. */
std::string
num(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

const GateRule *
matchRule(const std::vector<GateRule> &rules, const std::string &key)
{
    for (const GateRule &rule : rules) {
        if (key.compare(0, rule.prefix.size(), rule.prefix) == 0)
            return &rule;
    }
    return nullptr;
}

/** Exact comparison with just enough tolerance for a double's
 *  text round trip through the report file. */
bool
exactlyEqual(double a, double b)
{
    double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= std::max(1e-9 * scale, 1e-12);
}

GateFinding
gateOne(const std::string &key, const GateRule &rule,
        double baseline, double current)
{
    GateFinding f;
    f.key = key;
    f.baseline = baseline;
    f.current = current;
    f.gated = rule.cls != GateClass::Informational;

    switch (rule.cls) {
    case GateClass::Exact:
        f.ok = exactlyEqual(baseline, current);
        f.detail = f.ok ? "exact match"
                        : "deterministic value drifted: baseline " +
                              num(baseline) + ", current " +
                              num(current);
        break;
    case GateClass::HigherBetter: {
        double bound = baseline * (1.0 - rule.relSlack);
        if (current < bound) {
            f.ok = false;
            f.detail = "regressed: " + num(current) + " < " +
                       num(bound) + " (baseline " + num(baseline) +
                       " - " + num(rule.relSlack * 100.0) +
                       "% slack)";
        } else if (rule.floor > 0.0 && current < rule.floor) {
            f.ok = false;
            f.detail = "below absolute floor: " + num(current) +
                       " < " + num(rule.floor);
        } else {
            f.ok = true;
            f.detail = "ok (baseline " + num(baseline) + ")";
        }
        break;
    }
    case GateClass::LowerBetter: {
        double bound = baseline * (1.0 + rule.relSlack);
        f.ok = current <= bound;
        f.detail = f.ok ? "ok (baseline " + num(baseline) + ")"
                        : "regressed: " + num(current) + " > " +
                              num(bound) + " (baseline " +
                              num(baseline) + " + " +
                              num(rule.relSlack * 100.0) +
                              "% slack)";
        break;
    }
    case GateClass::Informational:
        f.ok = true;
        f.detail = "informational (baseline " + num(baseline) + ")";
        break;
    }
    return f;
}

} // anonymous namespace

size_t
GateResult::gatedCount() const
{
    size_t n = 0;
    for (const GateFinding &f : findings)
        n += f.gated ? 1 : 0;
    return n;
}

size_t
GateResult::failedCount() const
{
    size_t n = 0;
    for (const GateFinding &f : findings)
        n += (f.gated && !f.ok) ? 1 : 0;
    return n;
}

const char *
gateClassName(GateClass cls)
{
    switch (cls) {
    case GateClass::Exact:
        return "exact";
    case GateClass::HigherBetter:
        return "higher-better";
    case GateClass::LowerBetter:
        return "lower-better";
    case GateClass::Informational:
        return "informational";
    }
    return "?";
}

std::vector<GateRule>
kernelBenchGateRules()
{
    // Order matters: first matching prefix wins.  The unpruned
    // speedups carry the tentpole acceptance floor (vectorized
    // kernels must stay >= 2x scalar); pruned speedups are gated
    // relative only, since pruning aborts most of the vector work
    // and the margin over scalar is structurally thinner.
    return {
        {"speedup_unpruned_", GateClass::HigherBetter, 0.30, 2.0,
         true},
        {"speedup_pruned_", GateClass::HigherBetter, 0.35, 0.0,
         true},
        {"rate_", GateClass::HigherBetter, 0.30, 0.0, false},
        {"n_", GateClass::Exact, 0.0, 0.0, true},
        {"wall_", GateClass::Informational, 0.0, 0.0, true},
    };
}

std::vector<GateRule>
fig9GateRules()
{
    // Fault/health counters and flags are deterministic; modeled
    // and wall-clock seconds are measured on a shared machine, so
    // they get generous slack and only gross regressions fail.
    return {
        {"fault", GateClass::Exact, 0.0, 0.0, true},
        {"contigs", GateClass::Exact, 0.0, 0.0, true},
        {"hardenedOk", GateClass::Exact, 0.0, 0.0, true},
        {"speedup", GateClass::HigherBetter, 0.35, 0.0, true},
        {"hardenedSeconds", GateClass::LowerBetter, 0.50, 0.0,
         false},
        {"gatk3Seconds", GateClass::Informational, 0.0, 0.0, true},
        {"adamSeconds", GateClass::Informational, 0.0, 0.0, true},
        {"iraccSeconds", GateClass::LowerBetter, 0.50, 0.0, false},
    };
}

std::vector<GateRule>
fig7GateRules()
{
    // Everything fig7 reports is modeled from the deterministic
    // cycle-level simulator, so the default is Exact.  The fleet
    // speedups are ratios of exact makespans; they still get a
    // HigherBetter rule because the 2-card point carries the
    // multi-card acceptance floor (> 1.8x on the gated workload)
    // and a refreshed baseline must not quietly lower it.  Order
    // matters: "fleetSpeedup2" must precede the generic
    // "fleetSpeedup" prefix, and "asyncGain" the catch-all.
    return {
        {"fleetSpeedup2", GateClass::HigherBetter, 0.05, 1.8, true},
        {"fleetSpeedup", GateClass::HigherBetter, 0.05, 0.0, true},
        {"fleetMakespan", GateClass::Exact, 0.0, 0.0, true},
        {"fleetSteals", GateClass::Exact, 0.0, 0.0, true},
        {"asyncGain", GateClass::HigherBetter, 0.10, 1.0, true},
        {"", GateClass::Exact, 0.0, 0.0, true},
    };
}

std::vector<GateRule>
fig8GateRules()
{
    // HDC cycle counts are deterministic functions of the workload
    // (iracc_bench pins IRACC_SCALE for this suite); the width-32
    // speedup is their ratio and carries the data-parallel floor.
    return {
        {"width32Speedup", GateClass::HigherBetter, 0.05, 4.0,
         true},
        {"", GateClass::Exact, 0.0, 0.0, true},
    };
}

std::vector<GateRule>
ablationPruningGateRules()
{
    // Comparison and cycle counters are exact functions of the
    // pinned workload.  The mean eliminated fraction is the paper's
    // headline pruning claim (>50 % of computations eliminated);
    // the small relative slack only covers a refreshed baseline's
    // rounding, never a real drop below the floor.
    return {
        {"eliminatedFractionMean", GateClass::HigherBetter, 0.02,
         0.50, true},
        {"", GateClass::Exact, 0.0, 0.0, true},
    };
}

std::vector<GateRule>
ablationMemsysGateRules()
{
    // All sweep points are modeled seconds (cycles / clock), fully
    // deterministic at the pinned scale.  The 250 MHz point's
    // speedup over the 125 MHz base keeps an explicit floor: the
    // model is compute-bound, so doubling the clock must keep
    // buying well over 1.5x.
    return {
        {"clock250.speedup", GateClass::HigherBetter, 0.05, 1.5,
         true},
        {"", GateClass::Exact, 0.0, 0.0, true},
    };
}

void
scaleGateSlack(std::vector<GateRule> &rules, double factor)
{
    for (GateRule &rule : rules)
        rule.relSlack *= factor;
}

void
demoteNonPortable(std::vector<GateRule> &rules)
{
    for (GateRule &rule : rules)
        if (!rule.portable)
            rule.cls = GateClass::Informational;
}

bool
parseBenchValues(const std::string &json_text,
                 const std::string &expect_bench,
                 std::map<std::string, double> *values,
                 std::string *error)
{
    std::string parse_error;
    JsonValue doc = JsonValue::parse(json_text, &parse_error);
    if (!parse_error.empty()) {
        *error = "malformed JSON: " + parse_error;
        return false;
    }
    if (!doc.isObject() || !doc.has("schema") ||
        !doc.at("schema").isString() ||
        doc.at("schema").asString() != "iracc-bench-v1") {
        *error = "not an iracc-bench-v1 document";
        return false;
    }
    if (!expect_bench.empty() &&
        (!doc.has("bench") ||
         doc.at("bench").asString() != expect_bench)) {
        *error = "bench name mismatch: expected '" + expect_bench +
                 "', got '" +
                 (doc.has("bench") ? doc.at("bench").asString()
                                   : std::string("<none>")) +
                 "'";
        return false;
    }
    if (!doc.has("values") || !doc.at("values").isObject()) {
        *error = "document has no values object";
        return false;
    }
    values->clear();
    for (const auto &[key, val] : doc.at("values").asObject()) {
        if (!val.isNumber()) {
            *error = "value '" + key + "' is not a number";
            return false;
        }
        (*values)[key] = val.asNumber();
    }
    return true;
}

double
medianOf(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    size_t mid = xs.size() / 2;
    if (xs.size() % 2 == 1)
        return xs[mid];
    return (xs[mid - 1] + xs[mid]) / 2.0;
}

GateResult
checkBenchGate(
    const std::map<std::string, double> &baseline,
    const std::vector<std::map<std::string, double>> &runs,
    const std::vector<GateRule> &rules)
{
    GateResult result;
    std::vector<GateFinding> passed, notes;

    for (const auto &[key, base] : baseline) {
        // Every repetition must report the key: a metric that
        // silently vanishes is itself a regression.
        std::vector<double> samples;
        bool missing = false;
        for (const auto &run : runs) {
            auto it = run.find(key);
            if (it == run.end()) {
                missing = true;
                break;
            }
            samples.push_back(it->second);
        }
        if (missing || runs.empty()) {
            GateFinding f;
            f.key = key;
            f.ok = false;
            f.gated = true;
            f.baseline = base;
            f.detail = "missing from current run (baseline " +
                       num(base) + ")";
            result.findings.push_back(std::move(f));
            continue;
        }

        double cur = medianOf(samples);
        const GateRule *rule = matchRule(rules, key);
        GateFinding f =
            rule ? gateOne(key, *rule, base, cur)
                 : GateFinding{key, true, false, base, cur,
                               "no rule matched (ungated)"};
        if (f.gated && !f.ok)
            result.findings.push_back(std::move(f));
        else if (f.gated)
            passed.push_back(std::move(f));
        else
            notes.push_back(std::move(f));
    }

    // New keys: fine, but surface them so baselines get refreshed.
    std::set<std::string> seen;
    for (const auto &run : runs)
        for (const auto &[key, val] : run)
            if (!baseline.count(key) && seen.insert(key).second) {
                GateFinding f;
                f.key = key;
                f.current = val;
                f.detail = "new key, not in baseline (refresh to "
                           "adopt)";
                notes.push_back(std::move(f));
            }

    result.ok = result.findings.empty();
    result.findings.insert(result.findings.end(), passed.begin(),
                           passed.end());
    result.findings.insert(result.findings.end(), notes.begin(),
                           notes.end());
    return result;
}

} // namespace obs
} // namespace iracc
