#pragma once

/**
 * Always-on flight recorder.
 *
 * A process-wide set of fixed-size per-thread ring buffers of
 * structured binary events.  Emitting an event is a handful of
 * relaxed atomic stores into the calling thread's own ring --
 * no locks, no allocation, no formatting -- so the recorder stays
 * on in production and in every benchmark.  Rings wrap: the
 * recorder keeps the most recent kRingSlots events per thread,
 * which is exactly what a post-mortem wants.
 *
 * Determinism contract (docs/OBSERVABILITY.md): every emit site
 * stamps the event with the *virtual* (cycle-domain) time and the
 * logical (contig, card, sequence) coordinates from the installed
 * FlightContext.  One contig's pipeline runs serially on a single
 * worker thread, so its sequence counter is deterministic no
 * matter which thread runs it.  The canonical snapshot orders by
 * (vtime, contig, card, seq) -- never by arrival -- making the
 * merged log a pure function of (workload, seed, fault plan,
 * cards, stealing), byte-identical across thread counts and
 * wall-clock jitter.  Wall time is carried per event for humans
 * but excluded from the canonical rendering.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace iracc {
namespace obs {

/** Lower value = more severe.  kDebug is still recorded; severity
 *  only gates the optional live stderr tail. */
enum class FrSeverity : uint8_t {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

enum class FrCategory : uint8_t {
    Job = 0,
    Stage = 1,
    Sched = 2,
    Fleet = 3,
    Harden = 4,
    Fault = 5,
};

/** Event codes.  The numeric value is part of the binary event;
 *  names below are what the renderers print. */
enum class FrCode : uint16_t {
    // Job lifecycle (category Job).
    JobStart = 1,     // a0=contigs a1=reads a2=cards a3=stealing
    JobDone = 2,      // a0=status a1=degraded a2=failed
    ContigStart = 3,  // a0=reads
    ContigDone = 4,   // a0=status a1=targets a2=busyCycles
    Barrier = 5,      // a0=contigs
    ContigSkipped = 6, // a0=reads (cancellation skipped the contig)
    JobCancelled = 7,  // a0=skipped contigs a1=total contigs
    // Stage transitions (category Stage).
    StagePlan = 10,    // a0=targets planned
    StagePrepare = 11, // a0=targets
    StageExecute = 12, // a0=targets a1=max latency cycles
    StageApply = 13,   // a0=realigned
    // Host scheduler (category Sched).
    ShardPlace = 20, // a0=shard a1=targets; card=placed card
    ShardSteal = 21, // a0=shard a1=victim card; card=thief
    Dispatch = 22,   // a0=targets; card=card
    // Card fleet (category Fleet).
    FleetLease = 30,   // a0=cards a1=units/card
    FleetMerge = 31,   // a0=targets a1=steals; card=card
    FleetRelease = 32, // a0=cards
    // Hardened executor (category Harden).
    CrcMismatch = 40,   // a0=target a1=unit a2=0 in / 1 out
    WatchdogTrip = 41,  // a0=target a1=unit a2=waited cycles
    Quarantine = 42,    // a0=unit a1=strikes
    Retry = 43,         // a0=target a1=attempt
    Migrate = 44,       // a0=targets a1=from card; card=to card
    Fallback = 45,      // a0=target a1=attempts
    TargetFailed = 46,  // a0=target a1=attempts
    // Fault injection (category Fault).
    FaultInjected = 50, // a0=spec idx a1=kind a2=occurrence
                        // a3=interned spec text id
};

/** Decoded event, as returned by snapshot(). */
struct FrEvent {
    uint64_t vtime = 0;     // cycle-domain timestamp
    uint64_t wallNanos = 0; // wall clock, excluded from canon
    int32_t contig = -1;
    int32_t card = -1;
    uint32_t seq = 0;
    FrSeverity sev = FrSeverity::Info;
    FrCategory cat = FrCategory::Job;
    uint16_t code = 0;
    uint64_t args[4] = {0, 0, 0, 0};
};

const char *frSeverityName(FrSeverity s);
const char *frCategoryName(FrCategory c);
const char *frCodeName(uint16_t code);

/** Canonical ordering: (vtime, contig, card, seq), with the code
 *  and args as a stabilising tail for context-free events. */
bool frEventBefore(const FrEvent &a, const FrEvent &b);

class FlightRecorder {
  public:
    static constexpr uint32_t kRingSlots = 4096;

    static FlightRecorder &instance();

    /**
     * Record one event into the calling thread's ring.  contig
     * and seq come from the installed FlightContext (contig -1,
     * thread-local fallback counter when none).  Lock-free;
     * relaxed atomics only.
     */
    void emit(FrSeverity sev, FrCategory cat, FrCode code,
              uint64_t vtime, int32_t card = -1, uint64_t a0 = 0,
              uint64_t a1 = 0, uint64_t a2 = 0, uint64_t a3 = 0);

    /**
     * Decode every ring and return the canonical, deterministic
     * merge (see frEventBefore).  Intended for post-mortems and
     * tests, after the run being examined has quiesced; a
     * concurrent writer can tear at most the event it is writing.
     */
    std::vector<FrEvent> snapshot() const;

    /** Reset all rings (tests). */
    void clear();

    /**
     * Live tail: when enabled, every emit at most this severe is
     * also formatted to stderr.  -1 (default) disables the tail;
     * recording itself is unaffected.
     */
    void setLogLevel(int level);
    int logLevel() const;

    /** Small string table: intern returns a stable non-zero id
     *  for the text; events carry ids, renderers resolve them. */
    uint32_t intern(const std::string &text);
    std::string internedString(uint32_t id) const;

    /** Canonical text line (no wall clock, no string ids left
     *  unresolved) -- the unit of the post-mortem event log. */
    std::string formatText(const FrEvent &e) const;
    /** One JSON object per event, same determinism contract. */
    std::string formatJson(const FrEvent &e) const;

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

  private:
    FlightRecorder();
    ~FlightRecorder();

    struct Impl;
    Impl *impl_;
};

/**
 * RAII logical coordinates for the current thread.  Installing a
 * context binds subsequent emits to a contig and gives them a
 * fresh per-context sequence counter; contexts nest and restore
 * on destruction.  Install one per contig pipeline (worker
 * threads) and one for the driver (contig -1).
 */
class FlightContext {
  public:
    explicit FlightContext(int32_t contig);
    ~FlightContext();

    static int32_t currentContig();
    static uint32_t nextSeq();

    FlightContext(const FlightContext &) = delete;
    FlightContext &operator=(const FlightContext &) = delete;

  private:
    FlightContext *prev_;
    int32_t contig_;
    uint32_t seq_ = 0;
};

/** Shorthand used at emit sites. */
inline void
frEmit(FrSeverity sev, FrCategory cat, FrCode code, uint64_t vtime,
       int32_t card = -1, uint64_t a0 = 0, uint64_t a1 = 0,
       uint64_t a2 = 0, uint64_t a3 = 0)
{
    FlightRecorder::instance().emit(sev, cat, code, vtime, card,
                                    a0, a1, a2, a3);
}

} // namespace obs
} // namespace iracc
