#include "obs/bench_report.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>

#include "obs/metrics.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/table.hh"

#ifndef IRACC_GIT_DESCRIBE
#define IRACC_GIT_DESCRIBE "unknown"
#endif

namespace iracc {
namespace obs {

BenchReport::BenchReport(std::string bench_name,
                         std::string paper_ref)
    : bench(std::move(bench_name)), paperRef(std::move(paper_ref))
{
}

void
BenchReport::addValue(const std::string &key, double value)
{
    values.emplace_back(key, value);
}

void
BenchReport::addTable(const std::string &name, const Table &table)
{
    BenchTable t;
    t.name = name;
    t.columns = table.header();
    t.rows = table.rowData();
    tables.push_back(std::move(t));
}

void
BenchReport::write(std::ostream &os) const
{
    os << "{\"schema\":\"iracc-bench-v1\""
       << ",\"bench\":" << jsonQuote(bench)
       << ",\"paperRef\":" << jsonQuote(paperRef)
       << ",\"scale\":" << scaleDiv << ",\"chromosomes\":[";
    for (size_t i = 0; i < chromosomes.size(); ++i)
        os << (i ? "," : "") << chromosomes[i];
    os << "],\"git\":" << jsonQuote(IRACC_GIT_DESCRIBE)
       << ",\"wallSeconds\":" << wall.seconds() << ",\"values\":{";
    for (size_t i = 0; i < values.size(); ++i) {
        os << (i ? "," : "") << jsonQuote(values[i].first) << ":";
        if (std::isfinite(values[i].second))
            os << values[i].second;
        else
            os << "null";
    }
    os << "},\"tables\":[";
    for (size_t i = 0; i < tables.size(); ++i) {
        const BenchTable &t = tables[i];
        os << (i ? "," : "") << "{\"name\":" << jsonQuote(t.name)
           << ",\"columns\":[";
        for (size_t c = 0; c < t.columns.size(); ++c) {
            os << (c ? "," : "") << jsonQuote(t.columns[c]);
        }
        os << "],\"rows\":[";
        for (size_t r = 0; r < t.rows.size(); ++r) {
            os << (r ? "," : "") << "[";
            for (size_t c = 0; c < t.rows[r].size(); ++c)
                os << (c ? "," : "") << jsonQuote(t.rows[r][c]);
            os << "]";
        }
        os << "]}";
    }
    os << "]";
    if (metrics) {
        os << ",\"metrics\":";
        metrics->writeJson(os);
    }
    os << "}\n";
}

std::string
BenchReport::jsonPathFromArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            return argv[i + 1];
    }
    const char *env = std::getenv("IRACC_BENCH_JSON");
    return env ? env : "";
}

bool
BenchReport::writeToPath(const std::string &path) const
{
    if (path.empty())
        return false;
    std::ofstream f(path);
    fatal_if(!f, "cannot write bench JSON '%s'", path.c_str());
    write(f);
    std::printf("\nwrote %s (schema iracc-bench-v1)\n",
                path.c_str());
    return true;
}

} // namespace obs
} // namespace iracc
