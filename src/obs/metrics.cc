#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "util/json.hh"
#include "util/logging.hh"

namespace iracc {
namespace obs {

HistogramMetric::HistogramMetric(std::vector<double> upper_bounds)
    : ub(std::move(upper_bounds)), bins(ub.size() + 1),
      lo(std::numeric_limits<double>::infinity()),
      hi(-std::numeric_limits<double>::infinity())
{
    panic_if(!std::is_sorted(ub.begin(), ub.end()),
             "histogram bounds must ascend");
}

void
HistogramMetric::sample(double x)
{
    size_t i = static_cast<size_t>(
        std::lower_bound(ub.begin(), ub.end(), x) - ub.begin());
    bins[i].fetch_add(1, std::memory_order_relaxed);
    n.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(total, x);

    double cur = lo.load(std::memory_order_relaxed);
    while (x < cur &&
           !lo.compare_exchange_weak(cur, x,
                                     std::memory_order_relaxed)) {
    }
    cur = hi.load(std::memory_order_relaxed);
    while (x > cur &&
           !hi.compare_exchange_weak(cur, x,
                                     std::memory_order_relaxed)) {
    }
}

double
HistogramMetric::mean() const
{
    uint64_t c = count();
    return c ? sum() / static_cast<double>(c) : 0.0;
}

double
HistogramMetric::min() const
{
    return lo.load(std::memory_order_relaxed);
}

double
HistogramMetric::max() const
{
    return hi.load(std::memory_order_relaxed);
}

uint64_t
HistogramMetric::bucketCount(size_t i) const
{
    panic_if(i >= bins.size(), "histogram bucket %zu out of range",
             i);
    return bins[i].load(std::memory_order_relaxed);
}

std::vector<double>
defaultSecondsBounds()
{
    return {1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 0.25, 0.5,
            1.0,  2.5,  5.0,  10.0, 30.0, 100.0};
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx);
    panic_if(gauges.count(name) || hists.count(name) ||
                 lats.count(name),
             "metric '%s' already registered with another kind",
             name.c_str());
    auto &slot = counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx);
    panic_if(counters.count(name) || hists.count(name) ||
                 lats.count(name),
             "metric '%s' already registered with another kind",
             name.c_str());
    auto &slot = gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

HistogramMetric &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mtx);
    panic_if(counters.count(name) || gauges.count(name) ||
                 lats.count(name),
             "metric '%s' already registered with another kind",
             name.c_str());
    auto &slot = hists[name];
    if (!slot) {
        slot = std::make_unique<HistogramMetric>(
            bounds.empty() ? defaultSecondsBounds()
                           : std::move(bounds));
    }
    return *slot;
}

LatencyMetric &
MetricsRegistry::latency(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx);
    panic_if(counters.count(name) || gauges.count(name) ||
                 hists.count(name),
             "metric '%s' already registered with another kind",
             name.c_str());
    auto &slot = lats[name];
    if (!slot)
        slot = std::make_unique<LatencyMetric>();
    return *slot;
}

uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second->value();
}

int64_t
MetricsRegistry::gaugeValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = gauges.find(name);
    return it == gauges.end() ? 0 : it->second->value();
}

double
MetricsRegistry::histogramSum(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = hists.find(name);
    return it == hists.end() ? 0.0 : it->second->sum();
}

uint64_t
MetricsRegistry::histogramCount(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = hists.find(name);
    return it == hists.end() ? 0 : it->second->count();
}

LatencyHistogram
MetricsRegistry::latencySnapshot(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = lats.find(name);
    return it == lats.end() ? LatencyHistogram()
                            : it->second->snapshotHist();
}

namespace {

/** JSON cannot carry inf/nan; clamp extremes for empty metrics. */
void
writeNumber(std::ostream &os, double v)
{
    if (std::isfinite(v))
        os << v;
    else
        os << "null";
}

} // namespace

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mtx);
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters) {
        os << (first ? "" : ",") << jsonQuote(name) << ":"
           << c->value();
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, g] : gauges) {
        os << (first ? "" : ",") << jsonQuote(name)
           << ":{\"value\":" << g->value()
           << ",\"highWater\":" << g->highWater() << "}";
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : hists) {
        os << (first ? "" : ",") << jsonQuote(name)
           << ":{\"count\":" << h->count() << ",\"sum\":";
        writeNumber(os, h->sum());
        os << ",\"mean\":";
        writeNumber(os, h->mean());
        if (h->count() > 0) {
            os << ",\"min\":";
            writeNumber(os, h->min());
            os << ",\"max\":";
            writeNumber(os, h->max());
        }
        os << ",\"bounds\":[";
        for (size_t i = 0; i < h->bounds().size(); ++i) {
            os << (i ? "," : "");
            writeNumber(os, h->bounds()[i]);
        }
        // counts has one extra element: the +Inf bucket.
        os << "],\"counts\":[";
        for (size_t i = 0; i <= h->bounds().size(); ++i)
            os << (i ? "," : "") << h->bucketCount(i);
        os << "]}";
        first = false;
    }
    os << "},\"latencies\":{";
    first = true;
    for (const auto &[name, l] : lats) {
        LatencyHistogram h = l->snapshotHist();
        os << (first ? "" : ",") << jsonQuote(name)
           << ":{\"count\":" << h.count()
           << ",\"sum\":" << h.total() << ",\"min\":" << h.min()
           << ",\"max\":" << h.max() << ",\"p50\":" << h.p50()
           << ",\"p90\":" << h.p90() << ",\"p99\":" << h.p99()
           << ",\"p999\":" << h.p999() << "}";
        first = false;
    }
    os << "}}";
}

namespace {

/** Prometheus metric names allow [a-zA-Z0-9_:] only. */
std::string
promName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (!out.empty() && out[0] >= '0' && out[0] <= '9')
        out.insert(out.begin(), '_');
    return out.empty() ? std::string("_") : out;
}

} // namespace

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mtx);
    for (const auto &[name, c] : counters) {
        std::string p = promName(name);
        os << "# TYPE " << p << " counter\n"
           << p << " " << c->value() << "\n";
    }
    for (const auto &[name, g] : gauges) {
        std::string p = promName(name);
        os << "# TYPE " << p << " gauge\n"
           << p << " " << g->value() << "\n"
           << "# TYPE " << p << "_high_water gauge\n"
           << p << "_high_water " << g->highWater() << "\n";
    }
    for (const auto &[name, h] : hists) {
        std::string p = promName(name);
        os << "# TYPE " << p << " histogram\n";
        // One pass over the bins builds a self-consistent
        // cumulative series.  The le="+Inf" bucket and _count MUST
        // both equal the cumulative total of the emitted buckets:
        // reading h->count() separately races with concurrent
        // sample() calls (the n and bin updates are independent
        // atomics) and can emit a "+Inf" smaller than the last
        // bucket -- a non-monotone series scrapers reject.
        uint64_t cum = 0;
        for (size_t i = 0; i < h->bounds().size(); ++i) {
            cum += h->bucketCount(i);
            os << p << "_bucket{le=\"" << h->bounds()[i] << "\"} "
               << cum << "\n";
        }
        cum += h->bucketCount(h->bounds().size());
        os << p << "_bucket{le=\"+Inf\"} " << cum << "\n"
           << p << "_sum " << h->sum() << "\n"
           << p << "_count " << cum << "\n";
    }
    for (const auto &[name, l] : lats) {
        LatencyHistogram h = l->snapshotHist();
        std::string p = promName(name);
        os << "# TYPE " << p << " summary\n";
        if (h.count() == 0) {
            // Prometheus convention: a summary with no
            // observations exposes NaN quantiles, not 0 (a
            // scraper cannot tell "empty" from "really 0" --
            // dashboards would plot phantom zero latencies).
            for (const char *q : {"0.5", "0.9", "0.99", "0.999"})
                os << p << "{quantile=\"" << q << "\"} NaN\n";
        } else {
            os << p << "{quantile=\"0.5\"} " << h.p50() << "\n"
               << p << "{quantile=\"0.9\"} " << h.p90() << "\n"
               << p << "{quantile=\"0.99\"} " << h.p99() << "\n"
               << p << "{quantile=\"0.999\"} " << h.p999()
               << "\n";
        }
        os << p << "_sum " << h.total() << "\n"
           << p << "_count " << h.count() << "\n";
    }
}

} // namespace obs
} // namespace iracc
