/**
 * @file
 * Machine-readable benchmark output: one stable JSON schema every
 * bench binary emits, so runs accumulate into the performance
 * trajectory (`BENCH_*.json`) the ROADMAP tracks.
 *
 * Schema ("iracc-bench-v1"), validated by tests/obs_test.cc:
 *
 *   {
 *     "schema":      "iracc-bench-v1",
 *     "bench":       "<binary name>",
 *     "paperRef":    "<figure/table reproduced>",
 *     "scale":       <IRACC_SCALE divisor>,
 *     "chromosomes": [<restricted set, empty = all>],
 *     "git":         "<git describe at configure time>",
 *     "wallSeconds": <bench wall clock>,
 *     "values":      { "<key>": <number>, ... },
 *     "tables":      [ { "name": "...", "columns": [...],
 *                        "rows": [[cell, ...], ...] }, ... ],
 *     "metrics":     { ...MetricsRegistry::writeJson()... }   // optional
 *   }
 *
 * The output path comes from `--json <path>` on the bench command
 * line or the IRACC_BENCH_JSON environment variable (flag wins);
 * with neither, nothing is written and the bench behaves exactly
 * as before.
 */

#ifndef IRACC_OBS_BENCH_REPORT_HH
#define IRACC_OBS_BENCH_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/timer.hh"

namespace iracc {

class Table;

namespace obs {

class MetricsRegistry;

/** One exported table: a named copy of a util::Table's cells. */
struct BenchTable
{
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};

/** Builder + writer of one bench run's JSON document. */
class BenchReport
{
  public:
    /**
     * @param bench     bench binary name, e.g. "fig3_ir_fraction"
     * @param paper_ref the paper artifact reproduced
     */
    BenchReport(std::string bench, std::string paper_ref);

    void setScale(int64_t scale) { scaleDiv = scale; }
    void
    setChromosomes(std::vector<int> chroms)
    {
        chromosomes = std::move(chroms);
    }

    /** Attach a registry whose snapshot is embedded at write
     *  time (pointer must outlive the report). */
    void setMetrics(const MetricsRegistry *reg) { metrics = reg; }

    /** Record one headline scalar, e.g. {"speedup", 81.3}. */
    void addValue(const std::string &key, double value);

    /** Export a rendered table under @p name. */
    void addTable(const std::string &name, const Table &table);

    /** Write the document; wallSeconds = time since construction. */
    void write(std::ostream &os) const;

    /**
     * Resolve the output path: `--json <path>` beats
     * IRACC_BENCH_JSON beats "" (no output).
     */
    static std::string jsonPathFromArgs(int argc, char **argv);

    /**
     * Write to @p path when non-empty, announcing the file on
     * stdout.  @return true when a file was written.
     */
    bool writeToPath(const std::string &path) const;

  private:
    std::string bench;
    std::string paperRef;
    int64_t scaleDiv = 0;
    std::vector<int> chromosomes;
    std::vector<std::pair<std::string, double>> values;
    std::vector<BenchTable> tables;
    const MetricsRegistry *metrics = nullptr;
    Timer wall;
};

} // namespace obs
} // namespace iracc

#endif // IRACC_OBS_BENCH_REPORT_HH
