/**
 * @file
 * Perf-regression gate over iracc-bench-v1 reports.
 *
 * A baseline is a committed, verbatim bench JSON from a known-good
 * run.  The gate re-runs the bench N times, takes the per-key
 * median of the fresh runs, and compares each key against the
 * baseline under a rule chosen by key prefix:
 *
 *   Exact        deterministic counts/cycles -- any drift is a
 *                semantics change, not noise, so it fails outright
 *   HigherBetter throughput/speedup -- fails when the median drops
 *                below baseline*(1-relSlack), or below an absolute
 *                floor when one is set
 *   LowerBetter  wall-clock seconds -- fails when the median rises
 *                above baseline*(1+relSlack)
 *   Informational recorded for the trajectory, never fails
 *
 * Keys present in the baseline but missing from a fresh run fail
 * (a silently dropped metric hides regressions); new keys not in
 * the baseline pass with a note (refresh the baseline to adopt
 * them).  tools/iracc_bench drives this against the committed
 * baselines in bench/baselines/.
 */

#ifndef IRACC_OBS_BENCH_GATE_HH
#define IRACC_OBS_BENCH_GATE_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace iracc {
namespace obs {

enum class GateClass {
    Exact,
    HigherBetter,
    LowerBetter,
    Informational,
};

/** One gating policy, applied to every key starting with prefix. */
struct GateRule
{
    /** Key prefix this rule matches ("" matches everything). */
    std::string prefix;
    GateClass cls = GateClass::Informational;
    /** Relative slack for HigherBetter / LowerBetter. */
    double relSlack = 0.0;
    /** HigherBetter only: absolute minimum (0 = no floor). */
    double floor = 0.0;
    /**
     * True when the metric is comparable across machines (counts,
     * same-run ratios).  Absolute wall-clock rates are not: a
     * baseline recorded on one box says nothing about another, so
     * demoteNonPortable() turns those rules informational for
     * cross-machine (CI) checks.
     */
    bool portable = true;
};

/** Verdict for one key. */
struct GateFinding
{
    std::string key;
    bool ok = true;
    /** False for informational / unmatched / new keys. */
    bool gated = false;
    double baseline = 0.0;
    double current = 0.0;
    std::string detail;
};

struct GateResult
{
    /** True when every gated key passed. */
    bool ok = true;
    std::vector<GateFinding> findings;

    size_t gatedCount() const;
    size_t failedCount() const;
};

/** Printable name of a gate class. */
const char *gateClassName(GateClass cls);

/**
 * Rules for kernel_microbench reports (key conventions documented
 * in bench/kernel_microbench.cc).  More specific prefixes first;
 * matching picks the first rule whose prefix applies.
 */
std::vector<GateRule> kernelBenchGateRules();

/** Rules for fig9_speedup reports. */
std::vector<GateRule> fig9GateRules();

/** Rules for fig7_scheduling reports (all-deterministic cycle
 *  model; the 2-card fleet speedup carries the acceptance floor). */
std::vector<GateRule> fig7GateRules();

/** Rules for fig8_data_parallel reports (deterministic datapath
 *  cycle counts at a pinned IRACC_SCALE). */
std::vector<GateRule> fig8GateRules();

/** Rules for ablation_pruning reports: exact comparison/cycle
 *  counters per chromosome; the mean eliminated fraction carries
 *  the paper's >50 % pruning claim as an absolute floor. */
std::vector<GateRule> ablationPruningGateRules();

/** Rules for ablation_memsys reports: every sweep point is a
 *  modeled (cycle-exact) runtime, so the default is Exact; the
 *  250 MHz speedup keeps a floor because frequency must keep
 *  scaling performance in the compute-bound model. */
std::vector<GateRule> ablationMemsysGateRules();

/** Multiply every rule's relSlack by @p factor (gate tightening
 *  or loosening from the command line). */
void scaleGateSlack(std::vector<GateRule> &rules, double factor);

/** Turn rules whose metrics do not transfer across machines into
 *  informational ones (tools/iracc_bench --portable, used by CI
 *  against baselines recorded elsewhere). */
void demoteNonPortable(std::vector<GateRule> &rules);

/**
 * Parse an iracc-bench-v1 document and extract its flat values
 * map.  @return false (with *error set) on malformed JSON or a
 * schema/bench mismatch; @p expect_bench "" skips the name check.
 */
bool parseBenchValues(const std::string &json_text,
                      const std::string &expect_bench,
                      std::map<std::string, double> *values,
                      std::string *error);

/** Median of @p xs (averages the middle pair for even sizes). */
double medianOf(std::vector<double> xs);

/**
 * Gate @p runs (one values-map per fresh bench repetition) against
 * @p baseline under @p rules.  Findings come back ordered: failed
 * gated keys first, then passing gated keys, then ungated notes.
 */
GateResult checkBenchGate(
    const std::map<std::string, double> &baseline,
    const std::vector<std::map<std::string, double>> &runs,
    const std::vector<GateRule> &rules);

} // namespace obs
} // namespace iracc

#endif // IRACC_OBS_BENCH_GATE_HH
