/**
 * @file
 * Host-side metrics: a thread-safe registry of named counters,
 * gauges, and fixed-bucket histograms.
 *
 * This is the wall-clock-domain counterpart of the simulator's
 * PerfMonitor (src/sim/perf_monitor.hh): the FPGA model counts
 * cycles, this registry counts what the *host software* does --
 * reads aligned, pipeline stage seconds, thread-pool queue depth,
 * task wait distributions.  Like the PerfMonitor, it is opt-in:
 * components hold a null pointer and every instrumentation site is
 * behind a single pointer test, so the uninstrumented hot path is
 * unchanged.
 *
 * Metric handles returned by the registry are stable for the
 * registry's lifetime and individually thread-safe (relaxed
 * atomics; a histogram's count/sum/bucket updates are each atomic,
 * so concurrent totals are exact even though a single sample's
 * fields land independently).  Registration takes the registry
 * mutex; instrument hot loops by hoisting the handle out.
 *
 * Export formats: writeJson() (machine-readable, round-trips
 * through src/util/json) and writePrometheus() (text exposition
 * format, for scraping).  The metric name catalogue lives in
 * docs/OBSERVABILITY.md.
 */

#ifndef IRACC_OBS_METRICS_HH
#define IRACC_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/latency_histogram.hh"

namespace iracc {
namespace obs {

/** Add @p d to @p a without std::atomic<double>::fetch_add (kept
 *  portable to pre-C++20 library modes). */
inline void
atomicAdd(std::atomic<double> &a, double d)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + d,
                                    std::memory_order_relaxed)) {
    }
}

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    add(uint64_t d = 1)
    {
        v.fetch_add(d, std::memory_order_relaxed);
    }

    uint64_t value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v{0};
};

/** Instantaneous level (queue depth, in-flight contigs) with a
 *  high-water mark. */
class Gauge
{
  public:
    void
    set(int64_t x)
    {
        v.store(x, std::memory_order_relaxed);
        raiseHighWater(x);
    }

    void
    add(int64_t d)
    {
        int64_t now =
            v.fetch_add(d, std::memory_order_relaxed) + d;
        raiseHighWater(now);
    }

    int64_t value() const { return v.load(std::memory_order_relaxed); }
    int64_t
    highWater() const
    {
        return hw.load(std::memory_order_relaxed);
    }

  private:
    void
    raiseHighWater(int64_t x)
    {
        int64_t cur = hw.load(std::memory_order_relaxed);
        while (x > cur &&
               !hw.compare_exchange_weak(cur, x,
                                         std::memory_order_relaxed)) {
        }
    }

    std::atomic<int64_t> v{0};
    std::atomic<int64_t> hw{0};
};

/**
 * Fixed-bucket histogram: cumulative-style buckets defined by
 * ascending upper bounds, plus an implicit +Inf bucket, with exact
 * count/sum and min/max.  All updates are lock-free.
 */
class HistogramMetric
{
  public:
    /** @param upper_bounds ascending bucket upper bounds
     *  (inclusive, Prometheus "le" semantics); may be empty, which
     *  leaves only the +Inf bucket. */
    explicit HistogramMetric(std::vector<double> upper_bounds);

    void sample(double x);

    uint64_t count() const { return n.load(std::memory_order_relaxed); }
    double
    sum() const
    {
        return total.load(std::memory_order_relaxed);
    }
    double mean() const;
    double min() const; ///< +inf when empty
    double max() const; ///< -inf when empty

    const std::vector<double> &bounds() const { return ub; }

    /** Count in bucket @p i; i == bounds().size() is +Inf. */
    uint64_t bucketCount(size_t i) const;

  private:
    std::vector<double> ub;
    std::vector<std::atomic<uint64_t>> bins; ///< ub.size() + 1
    std::atomic<uint64_t> n{0};
    std::atomic<double> total{0.0};
    std::atomic<double> lo;
    std::atomic<double> hi;
};

/** Default histogram bounds for durations in seconds
 *  (1 us .. 100 s, roughly logarithmic). */
std::vector<double> defaultSecondsBounds();

/**
 * Percentile-capable latency metric: a mutex-guarded
 * LatencyHistogram (obs/latency_histogram.hh).  Unlike the
 * fixed-bucket HistogramMetric, quantiles carry bounded relative
 * error at any magnitude, and whole per-run histograms merge in
 * exactly.  Values are raw uint64 in whatever unit the metric
 * name declares (cycles, nanoseconds).
 */
class LatencyMetric
{
  public:
    void
    record(uint64_t v)
    {
        std::lock_guard<std::mutex> lock(m);
        h.record(v);
    }

    /** Exact merge of a per-run/per-contig histogram. */
    void
    merge(const LatencyHistogram &other)
    {
        std::lock_guard<std::mutex> lock(m);
        h.merge(other);
    }

    /** Consistent copy for rendering. */
    LatencyHistogram
    snapshotHist() const
    {
        std::lock_guard<std::mutex> lock(m);
        return h;
    }

  private:
    mutable std::mutex m;
    LatencyHistogram h;
};

/**
 * The thread-safe metric registry.  Lookup-or-create by name;
 * handles stay valid for the registry's lifetime.  A name is bound
 * to one metric kind; requesting it as another kind panics.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);

    /** @param bounds bucket upper bounds; empty selects
     *  defaultSecondsBounds().  Only the first registration's
     *  bounds stick. */
    HistogramMetric &histogram(const std::string &name,
                               std::vector<double> bounds = {});

    /** Percentile latency distribution (see LatencyMetric). */
    LatencyMetric &latency(const std::string &name);

    // -- convenience readers (0 / empty semantics when absent) --
    uint64_t counterValue(const std::string &name) const;
    int64_t gaugeValue(const std::string &name) const;
    double histogramSum(const std::string &name) const;
    uint64_t histogramCount(const std::string &name) const;
    /** Empty histogram when the metric is absent. */
    LatencyHistogram latencySnapshot(const std::string &name) const;

    /** One JSON object: {"counters":{...},"gauges":{...},
     *  "histograms":{...}}.  Names escaped via util/json. */
    void writeJson(std::ostream &os) const;

    /** Prometheus text exposition format; metric names are
     *  sanitized ('.' and other illegal characters -> '_'). */
    void writePrometheus(std::ostream &os) const;

  private:
    mutable std::mutex mtx;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<HistogramMetric>> hists;
    std::map<std::string, std::unique_ptr<LatencyMetric>> lats;
};

} // namespace obs
} // namespace iracc

#endif // IRACC_OBS_METRICS_HH
