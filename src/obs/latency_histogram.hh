#pragma once

/**
 * Mergeable log-linear latency histogram.
 *
 * Buckets cover the full uint64_t range with bounded relative
 * error: values below kSubBuckets get one exact bucket each, and
 * every power-of-two octave [2^k, 2^(k+1)) above that is split
 * into kSubBuckets linear sub-buckets.  A recorded value therefore
 * lands in a bucket whose width is at most value / kSubBuckets,
 * so with 16 sub-buckets any quantile estimate is within ~6.25%
 * of the true order statistic, independent of magnitude.
 *
 * The histogram is deliberately plain data (no atomics): recording
 * happens on the thread that owns the enclosing run state, and
 * cross-thread aggregation goes through merge(), which is exact --
 * bucket-wise addition -- and therefore associative and
 * commutative.  That is what lets per-contig, per-card, and
 * per-thread histograms collapse into one global distribution with
 * no approximation beyond the original bucketing.
 *
 * Header-only so cycle-domain code can embed one without a link
 * edge onto iracc_obs.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace iracc {
namespace obs {

class LatencyHistogram {
  public:
    static constexpr uint32_t kSubBucketBits = 4;
    static constexpr uint32_t kSubBuckets = 1u << kSubBucketBits;
    // Exact buckets for [0, kSubBuckets), then kSubBuckets linear
    // sub-buckets per octave for octaves kSubBucketBits..63.
    static constexpr uint32_t kBuckets =
        kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

    LatencyHistogram() : bins_(kBuckets, 0) {}

    /** Bucket index for a value; order preserving. */
    static uint32_t bucketIndex(uint64_t v)
    {
        if (v < kSubBuckets)
            return static_cast<uint32_t>(v);
        uint32_t octave =
            63u - static_cast<uint32_t>(__builtin_clzll(v));
        uint32_t sub = static_cast<uint32_t>(
            (v >> (octave - kSubBucketBits)) & (kSubBuckets - 1));
        return kSubBuckets +
               (octave - kSubBucketBits) * kSubBuckets + sub;
    }

    /** Inclusive lower bound of bucket i (inverse of bucketIndex). */
    static uint64_t bucketLowerBound(uint32_t i)
    {
        if (i < kSubBuckets)
            return i;
        uint32_t octave =
            kSubBucketBits + (i - kSubBuckets) / kSubBuckets;
        uint32_t sub = (i - kSubBuckets) % kSubBuckets;
        return static_cast<uint64_t>(kSubBuckets + sub)
               << (octave - kSubBucketBits);
    }

    void record(uint64_t v)
    {
        ++bins_[bucketIndex(v)];
        lo_ = n_ == 0 ? v : std::min(lo_, v);
        hi_ = std::max(hi_, v);
        ++n_;
        sum_ += v;
    }

    /** Exact bucket-wise merge; associative and commutative. */
    void merge(const LatencyHistogram &other)
    {
        for (uint32_t i = 0; i < kBuckets; ++i)
            bins_[i] += other.bins_[i];
        if (other.n_ > 0) {
            lo_ = n_ == 0 ? other.lo_ : std::min(lo_, other.lo_);
            hi_ = std::max(hi_, other.hi_);
        }
        n_ += other.n_;
        sum_ += other.sum_;
    }

    uint64_t count() const { return n_; }
    uint64_t total() const { return sum_; }
    uint64_t min() const { return n_ ? lo_ : 0; }
    uint64_t max() const { return hi_; }
    double mean() const
    {
        return n_ ? static_cast<double>(sum_) / n_ : 0.0;
    }

    /**
     * Value at quantile q in [0, 1]: the representative value
     * (bucket midpoint, clamped to the observed min/max) of the
     * first bucket whose cumulative count reaches ceil(q * n).
     * Deterministic, and within one bucket width of the true
     * order statistic.
     */
    uint64_t quantile(double q) const
    {
        if (n_ == 0)
            return 0;
        q = std::min(1.0, std::max(0.0, q));
        uint64_t rank = static_cast<uint64_t>(
            std::ceil(q * static_cast<double>(n_)));
        if (rank == 0)
            rank = 1;
        uint64_t cum = 0;
        for (uint32_t i = 0; i < kBuckets; ++i) {
            cum += bins_[i];
            if (cum >= rank)
                return std::min(hi_, std::max(lo_, bucketMid(i)));
        }
        return hi_;
    }

    uint64_t p50() const { return quantile(0.50); }
    uint64_t p90() const { return quantile(0.90); }
    uint64_t p99() const { return quantile(0.99); }
    uint64_t p999() const { return quantile(0.999); }

    bool operator==(const LatencyHistogram &o) const
    {
        return n_ == o.n_ && sum_ == o.sum_ && lo_ == o.lo_ &&
               hi_ == o.hi_ && bins_ == o.bins_;
    }
    bool operator!=(const LatencyHistogram &o) const
    {
        return !(*this == o);
    }

    void reset()
    {
        std::fill(bins_.begin(), bins_.end(), 0);
        n_ = sum_ = lo_ = hi_ = 0;
    }

  private:
    static uint64_t bucketMid(uint32_t i)
    {
        uint64_t lo = bucketLowerBound(i);
        if (i < kSubBuckets)
            return lo; // exact bucket
        uint32_t octave =
            kSubBucketBits + (i - kSubBuckets) / kSubBuckets;
        uint64_t width = uint64_t{1} << (octave - kSubBucketBits);
        return lo + width / 2;
    }

    std::vector<uint64_t> bins_;
    uint64_t n_ = 0;
    uint64_t sum_ = 0;
    uint64_t lo_ = 0;
    uint64_t hi_ = 0;
};

} // namespace obs
} // namespace iracc
