#include "obs/span.hh"

#include <algorithm>
#include <ostream>

#include "obs/metrics.hh"
#include "sim/perf_monitor.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace iracc {
namespace obs {

SpanTracer::SpanTracer() : epoch(std::chrono::steady_clock::now()) {}

double
SpanTracer::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

uint32_t
SpanTracer::tidLocked(std::thread::id id)
{
    for (const auto &[tid_id, tid] : tids) {
        if (tid_id == id)
            return tid;
    }
    uint32_t tid = nextTid++;
    tids.emplace_back(id, tid);
    names.emplace_back(tid, "host thread " + std::to_string(tid));
    return tid;
}

uint32_t
SpanTracer::currentThreadTid()
{
    std::lock_guard<std::mutex> lock(mtx);
    return tidLocked(std::this_thread::get_id());
}

void
SpanTracer::nameCurrentThread(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx);
    uint32_t tid = tidLocked(std::this_thread::get_id());
    for (auto &[t, n] : names) {
        if (t == tid) {
            n = name;
            return;
        }
    }
}

void
SpanTracer::record(std::string name, std::string cat,
                   double start_us, double dur_us)
{
    std::lock_guard<std::mutex> lock(mtx);
    HostSpan span;
    span.name = std::move(name);
    span.cat = std::move(cat);
    span.tid = tidLocked(std::this_thread::get_id());
    span.startUs = start_us;
    span.durUs = dur_us < 0.0 ? 0.0 : dur_us;
    all.push_back(std::move(span));
}

std::vector<HostSpan>
SpanTracer::spans() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return all;
}

std::vector<std::pair<uint32_t, std::string>>
SpanTracer::threadNames() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return names;
}

ScopedSpan::ScopedSpan(const Observability *obs, std::string name,
                       std::string cat, std::string histogram)
{
    if (!obs || !obs->on())
        return;
    o = obs;
    nm = std::move(name);
    ct = std::move(cat);
    hist = std::move(histogram);
    started = std::chrono::steady_clock::now();
    open = true;
}

double
ScopedSpan::close()
{
    if (!open)
        return 0.0;
    open = false;
    auto ended = std::chrono::steady_clock::now();
    double seconds =
        std::chrono::duration<double>(ended - started).count();
    if (o->tracer) {
        double end_us = o->tracer->nowUs();
        o->tracer->record(nm, ct, end_us - seconds * 1e6,
                          seconds * 1e6);
    }
    if (o->metrics && !hist.empty())
        o->metrics->histogram(hist).sample(seconds);
    return seconds;
}

void
writeUnifiedChromeTrace(std::ostream &os, const SpanTracer *host,
                        const PerfReport *sim, double clock_mhz)
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto comma = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    if (host) {
        comma();
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
           << kTraceHostPid
           << ",\"tid\":0,\"args\":{\"name\":\"host\"}}";
        for (const auto &[tid, name] : host->threadNames()) {
            comma();
            os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
               << kTraceHostPid << ",\"tid\":" << tid
               << ",\"args\":{\"name\":" << jsonQuote(name) << "}}";
        }
        for (const HostSpan &span : host->spans()) {
            comma();
            os << "{\"name\":" << jsonQuote(span.name)
               << ",\"cat\":" << jsonQuote(span.cat)
               << ",\"ph\":\"X\",\"ts\":" << span.startUs
               << ",\"dur\":" << span.durUs
               << ",\"pid\":" << kTraceHostPid
               << ",\"tid\":" << span.tid << ",\"args\":{}}";
        }
    }

    if (sim && sim->enabled)
        appendChromeTraceEvents(os, *sim, clock_mhz, first);

    os << "\n]}\n";
}

void
instrumentThreadPool(iracc::ThreadPool &pool,
                     MetricsRegistry &registry,
                     const std::string &prefix)
{
    // Metric handles are resolved once; the hooks touch only
    // atomics afterwards.
    Gauge &depth = registry.gauge(prefix + ".queue_depth");
    Counter &tasks = registry.counter(prefix + ".tasks");
    HistogramMetric &wait =
        registry.histogram(prefix + ".task_wait_seconds");
    HistogramMetric &busy =
        registry.histogram(prefix + ".task_busy_seconds");

    auto hooks = std::make_shared<ThreadPoolHooks>();
    hooks->onEnqueue = [&depth](size_t d) {
        depth.set(static_cast<int64_t>(d));
    };
    hooks->onDequeue = [&depth, &tasks, &wait](double wait_seconds,
                                               size_t d) {
        depth.set(static_cast<int64_t>(d));
        tasks.add(1);
        wait.sample(wait_seconds);
    };
    hooks->onTaskDone = [&busy](double busy_seconds) {
        busy.sample(busy_seconds);
    };
    pool.setHooks(std::move(hooks));
}

} // namespace obs
} // namespace iracc
