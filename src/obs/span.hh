/**
 * @file
 * Wall-clock span tracing for host threads, and the unified trace
 * export that shows host work and the simulated FPGA on one
 * Perfetto timeline.
 *
 * A SpanTracer collects [start, end) wall-clock intervals recorded
 * by host threads.  Each OS thread is lazily assigned its own
 * trace track ("tid"), so a contig-parallel realignment job
 * renders as one host process with one row per worker thread.
 *
 * The two clock domains meet in writeUnifiedChromeTrace(): host
 * spans are in wall-clock microseconds since the tracer's epoch,
 * and the simulator's cycle-domain spans (PerfReport::trace) are
 * converted to microseconds via the existing cycles / MHz
 * conversion -- so one merged file shows the host process
 * (pid = kTraceHostPid) next to the per-contig FPGA processes
 * (pid = contig id), all on a microsecond axis.
 *
 * Like every observability surface in this repository, tracing is
 * opt-in: instrumented code holds a nullable pointer and
 * ScopedSpan is a complete no-op (not even a clock read) when
 * constructed with a null bundle.
 */

#ifndef IRACC_OBS_SPAN_HH
#define IRACC_OBS_SPAN_HH

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace iracc {

struct PerfReport;

namespace obs {

class MetricsRegistry;

/** Chrome trace pid of the host process in unified traces; the
 *  per-contig FPGA simulations keep pid = contig id (0..24), so
 *  any value above the largest contig id works. */
constexpr uint32_t kTraceHostPid = 1000;

/** One completed host-side span. */
struct HostSpan
{
    std::string name; ///< e.g. "realign c21" or "sort"
    std::string cat;  ///< e.g. "stage", "job", "refine"
    uint32_t tid = 0; ///< per-OS-thread track id
    double startUs = 0.0; ///< wall microseconds since tracer epoch
    double durUs = 0.0;   ///< span length in microseconds
};

/**
 * Thread-safe collector of host spans.  record() may be called
 * from any thread; the calling thread is registered on first use.
 */
class SpanTracer
{
  public:
    SpanTracer();
    SpanTracer(const SpanTracer &) = delete;
    SpanTracer &operator=(const SpanTracer &) = delete;

    /** Microseconds elapsed since this tracer was constructed. */
    double nowUs() const;

    /**
     * Trace track of the calling thread, assigning one (and a
     * default "host thread N" name) on first use.
     */
    uint32_t currentThreadTid();

    /** Name the calling thread's track (e.g. "realign worker 2"). */
    void nameCurrentThread(const std::string &name);

    /** Record one completed span on the calling thread's track. */
    void record(std::string name, std::string cat, double start_us,
                double dur_us);

    /** Snapshot of all recorded spans. */
    std::vector<HostSpan> spans() const;

    /** Snapshot of (tid, name) track labels. */
    std::vector<std::pair<uint32_t, std::string>> threadNames() const;

  private:
    uint32_t tidLocked(std::thread::id id);

    mutable std::mutex mtx;
    std::chrono::steady_clock::time_point epoch;
    std::vector<HostSpan> all;
    std::vector<std::pair<std::thread::id, uint32_t>> tids;
    std::vector<std::pair<uint32_t, std::string>> names;
    uint32_t nextTid = 1;
};

/**
 * The nullable bundle instrumented code carries: both members
 * optional, either may be null.  Passing a null Observability* (or
 * one with both members null) disables instrumentation entirely.
 */
struct Observability
{
    MetricsRegistry *metrics = nullptr;
    SpanTracer *tracer = nullptr;

    /** True when any instrumentation sink is attached. */
    bool on() const { return metrics != nullptr || tracer != nullptr; }
};

/**
 * RAII span: on close (or destruction) records a trace span on the
 * bundle's tracer and samples the elapsed seconds into the named
 * duration histogram of the bundle's registry.  When @p obs is
 * null or empty the object is inert -- no clock is read.
 */
class ScopedSpan
{
  public:
    /**
     * @param obs       nullable observability bundle
     * @param name      span name (trace display)
     * @param cat       span category
     * @param histogram name of the seconds histogram to sample;
     *                  empty = trace span only
     */
    ScopedSpan(const Observability *obs, std::string name,
               std::string cat, std::string histogram = "");

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan() { close(); }

    /** End the span; idempotent.  @return elapsed seconds
     *  (0 when instrumentation is disabled). */
    double close();

  private:
    const Observability *o = nullptr; ///< null when inert
    std::string nm;
    std::string ct;
    std::string hist;
    std::chrono::steady_clock::time_point started;
    bool open = false;
};

/**
 * Write one Chrome trace-event JSON document merging host spans
 * (@p host, may be null) with simulator spans (@p sim, may be
 * null; cycles converted at @p clock_mhz, which is required only
 * when @p sim has trace events).  Loads in chrome://tracing and
 * Perfetto; see docs/OBSERVABILITY.md for the pid/tid layout.
 */
void writeUnifiedChromeTrace(std::ostream &os, const SpanTracer *host,
                             const PerfReport *sim, double clock_mhz);

} // namespace obs

class ThreadPool; // util layer

namespace obs {

/**
 * Attach queue-depth / task-wait / busy-time metrics to a thread
 * pool under @p prefix:
 *
 *   <prefix>.queue_depth        gauge (+ high water)
 *   <prefix>.tasks              counter
 *   <prefix>.task_wait_seconds  histogram (enqueue -> dequeue)
 *   <prefix>.task_busy_seconds  histogram (task execution)
 *
 * Worker utilization over a window = task_busy_seconds.sum /
 * (wall seconds x worker count).  Install while the pool is idle.
 */
void instrumentThreadPool(iracc::ThreadPool &pool,
                          MetricsRegistry &registry,
                          const std::string &prefix);

} // namespace obs
} // namespace iracc

#endif // IRACC_OBS_SPAN_HH
