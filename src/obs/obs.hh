/**
 * @file
 * Umbrella header of the host-side observability layer: the
 * metrics registry (obs/metrics.hh) and the span tracer + unified
 * trace export (obs/span.hh), bundled behind the nullable
 * obs::Observability struct instrumented code carries.
 */

#ifndef IRACC_OBS_OBS_HH
#define IRACC_OBS_OBS_HH

#include "obs/metrics.hh"
#include "obs/span.hh"

#endif // IRACC_OBS_OBS_HH
