#include "obs/flight_recorder.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace iracc {
namespace obs {

namespace {

constexpr uint32_t kWordsPerSlot = 8;

/** Per-thread single-producer ring.  Every word is a relaxed
 *  atomic so concurrent snapshot readers are race-free by
 *  construction (they may observe a torn *event*, never torn
 *  memory).  pos counts events ever written; slot = pos % N. */
struct Ring {
    std::unique_ptr<std::atomic<uint64_t>[]> words;
    std::atomic<uint64_t> pos{0};

    Ring()
        : words(new std::atomic<uint64_t>[FlightRecorder::
                                              kRingSlots *
                                          kWordsPerSlot]())
    {
    }
};

uint64_t
wallNanosNow()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

thread_local uint32_t tls_fallback_seq = 0;

} // anonymous namespace

struct FlightRecorder::Impl {
    mutable std::mutex ringsMutex;
    std::vector<std::unique_ptr<Ring>> rings;

    mutable std::mutex stringsMutex;
    std::vector<std::string> strings;
    std::unordered_map<std::string, uint32_t> stringIds;

    std::atomic<int> logLevel{-1};
    std::mutex tailMutex;

    Ring *acquireRing()
    {
        std::lock_guard<std::mutex> lock(ringsMutex);
        rings.push_back(std::make_unique<Ring>());
        return rings.back().get();
    }
};

FlightRecorder::FlightRecorder() : impl_(new Impl) {}
FlightRecorder::~FlightRecorder() { delete impl_; }

FlightRecorder &
FlightRecorder::instance()
{
    static FlightRecorder recorder;
    return recorder;
}

void
FlightRecorder::emit(FrSeverity sev, FrCategory cat, FrCode code,
                     uint64_t vtime, int32_t card, uint64_t a0,
                     uint64_t a1, uint64_t a2, uint64_t a3)
{
    // Rings live for the process lifetime (owned by the recorder,
    // never erased), so the cached pointer stays valid after
    // clear() and across contexts.
    static thread_local Ring *ring = nullptr;
    if (!ring)
        ring = impl_->acquireRing();

    int32_t contig = FlightContext::currentContig();
    uint32_t seq = FlightContext::nextSeq();

    uint64_t p = ring->pos.load(std::memory_order_relaxed);
    std::atomic<uint64_t> *w =
        &ring->words[(p % kRingSlots) * kWordsPerSlot];
    w[0].store(vtime, std::memory_order_relaxed);
    w[1].store(wallNanosNow(), std::memory_order_relaxed);
    w[2].store((static_cast<uint64_t>(
                    static_cast<uint32_t>(contig))
                << 32) |
                   static_cast<uint32_t>(card),
               std::memory_order_relaxed);
    w[3].store((static_cast<uint64_t>(seq) << 32) |
                   (static_cast<uint64_t>(sev) << 24) |
                   (static_cast<uint64_t>(cat) << 16) |
                   static_cast<uint64_t>(code),
               std::memory_order_relaxed);
    w[4].store(a0, std::memory_order_relaxed);
    w[5].store(a1, std::memory_order_relaxed);
    w[6].store(a2, std::memory_order_relaxed);
    w[7].store(a3, std::memory_order_relaxed);
    ring->pos.store(p + 1, std::memory_order_relaxed);

    int level = impl_->logLevel.load(std::memory_order_relaxed);
    if (level >= static_cast<int>(sev)) {
        FrEvent e;
        e.vtime = vtime;
        e.contig = contig;
        e.card = card;
        e.seq = seq;
        e.sev = sev;
        e.cat = cat;
        e.code = static_cast<uint16_t>(code);
        e.args[0] = a0;
        e.args[1] = a1;
        e.args[2] = a2;
        e.args[3] = a3;
        std::string line = formatText(e);
        std::lock_guard<std::mutex> lock(impl_->tailMutex);
        std::fprintf(stderr, "%s\n", line.c_str());
    }
}

std::vector<FrEvent>
FlightRecorder::snapshot() const
{
    std::vector<FrEvent> out;
    std::lock_guard<std::mutex> lock(impl_->ringsMutex);
    for (const auto &ring : impl_->rings) {
        uint64_t p = ring->pos.load(std::memory_order_relaxed);
        uint64_t n = std::min<uint64_t>(p, kRingSlots);
        for (uint64_t i = p - n; i < p; ++i) {
            const std::atomic<uint64_t> *w =
                &ring->words[(i % kRingSlots) * kWordsPerSlot];
            FrEvent e;
            e.vtime = w[0].load(std::memory_order_relaxed);
            e.wallNanos = w[1].load(std::memory_order_relaxed);
            uint64_t w2 = w[2].load(std::memory_order_relaxed);
            e.contig = static_cast<int32_t>(
                static_cast<uint32_t>(w2 >> 32));
            e.card = static_cast<int32_t>(
                static_cast<uint32_t>(w2));
            uint64_t w3 = w[3].load(std::memory_order_relaxed);
            e.seq = static_cast<uint32_t>(w3 >> 32);
            e.sev = static_cast<FrSeverity>((w3 >> 24) & 0xff);
            e.cat = static_cast<FrCategory>((w3 >> 16) & 0xff);
            e.code = static_cast<uint16_t>(w3 & 0xffff);
            for (int a = 0; a < 4; ++a)
                e.args[a] =
                    w[4 + a].load(std::memory_order_relaxed);
            out.push_back(e);
        }
    }
    std::sort(out.begin(), out.end(), frEventBefore);
    return out;
}

void
FlightRecorder::clear()
{
    std::lock_guard<std::mutex> lock(impl_->ringsMutex);
    for (auto &ring : impl_->rings)
        ring->pos.store(0, std::memory_order_relaxed);
}

void
FlightRecorder::setLogLevel(int level)
{
    impl_->logLevel.store(level, std::memory_order_relaxed);
}

int
FlightRecorder::logLevel() const
{
    return impl_->logLevel.load(std::memory_order_relaxed);
}

uint32_t
FlightRecorder::intern(const std::string &text)
{
    std::lock_guard<std::mutex> lock(impl_->stringsMutex);
    auto it = impl_->stringIds.find(text);
    if (it != impl_->stringIds.end())
        return it->second;
    impl_->strings.push_back(text);
    uint32_t id = static_cast<uint32_t>(impl_->strings.size());
    impl_->stringIds.emplace(text, id);
    return id;
}

std::string
FlightRecorder::internedString(uint32_t id) const
{
    std::lock_guard<std::mutex> lock(impl_->stringsMutex);
    if (id == 0 || id > impl_->strings.size())
        return "";
    return impl_->strings[id - 1];
}

namespace {

const char *
runStatusName(uint64_t s)
{
    switch (s) {
    case 0:
        return "ok";
    case 1:
        return "degraded";
    case 2:
        return "failed";
    }
    return "?";
}

std::string
u64s(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // anonymous namespace

const char *
frSeverityName(FrSeverity s)
{
    switch (s) {
    case FrSeverity::Error:
        return "ERROR";
    case FrSeverity::Warn:
        return "WARN";
    case FrSeverity::Info:
        return "INFO";
    case FrSeverity::Debug:
        return "DEBUG";
    }
    return "?";
}

const char *
frCategoryName(FrCategory c)
{
    switch (c) {
    case FrCategory::Job:
        return "job";
    case FrCategory::Stage:
        return "stage";
    case FrCategory::Sched:
        return "sched";
    case FrCategory::Fleet:
        return "fleet";
    case FrCategory::Harden:
        return "harden";
    case FrCategory::Fault:
        return "fault";
    }
    return "?";
}

const char *
frCodeName(uint16_t code)
{
    switch (static_cast<FrCode>(code)) {
    case FrCode::JobStart:
        return "job_start";
    case FrCode::JobDone:
        return "job_done";
    case FrCode::ContigStart:
        return "contig_start";
    case FrCode::ContigDone:
        return "contig_done";
    case FrCode::Barrier:
        return "barrier";
    case FrCode::ContigSkipped:
        return "contig_skipped";
    case FrCode::JobCancelled:
        return "job_cancelled";
    case FrCode::StagePlan:
        return "plan";
    case FrCode::StagePrepare:
        return "prepare";
    case FrCode::StageExecute:
        return "execute";
    case FrCode::StageApply:
        return "apply";
    case FrCode::ShardPlace:
        return "shard_place";
    case FrCode::ShardSteal:
        return "shard_steal";
    case FrCode::Dispatch:
        return "dispatch";
    case FrCode::FleetLease:
        return "lease";
    case FrCode::FleetMerge:
        return "merge";
    case FrCode::FleetRelease:
        return "release";
    case FrCode::CrcMismatch:
        return "crc_mismatch";
    case FrCode::WatchdogTrip:
        return "watchdog_trip";
    case FrCode::Quarantine:
        return "quarantine";
    case FrCode::Retry:
        return "retry";
    case FrCode::Migrate:
        return "migrate";
    case FrCode::Fallback:
        return "fallback";
    case FrCode::TargetFailed:
        return "target_failed";
    case FrCode::FaultInjected:
        return "injected";
    }
    return "unknown";
}

bool
frEventBefore(const FrEvent &a, const FrEvent &b)
{
    if (a.vtime != b.vtime)
        return a.vtime < b.vtime;
    if (a.contig != b.contig)
        return a.contig < b.contig;
    if (a.card != b.card)
        return a.card < b.card;
    if (a.seq != b.seq)
        return a.seq < b.seq;
    if (a.code != b.code)
        return a.code < b.code;
    for (int i = 0; i < 4; ++i)
        if (a.args[i] != b.args[i])
            return a.args[i] < b.args[i];
    return false;
}

std::string
FlightRecorder::formatText(const FrEvent &e) const
{
    char head[96];
    std::snprintf(head, sizeof(head),
                  "@%012llu c%-3d k%-2d #%05u %-5s %s.%s",
                  static_cast<unsigned long long>(e.vtime),
                  e.contig, e.card, e.seq, frSeverityName(e.sev),
                  frCategoryName(e.cat), frCodeName(e.code));
    std::string out = head;
    const uint64_t *a = e.args;
    switch (static_cast<FrCode>(e.code)) {
    case FrCode::JobStart:
        out += " contigs=" + u64s(a[0]) + " reads=" + u64s(a[1]) +
               " cards=" + u64s(a[2]) + " stealing=" + u64s(a[3]);
        break;
    case FrCode::JobDone:
        out += std::string(" status=") + runStatusName(a[0]) +
               " degraded=" + u64s(a[1]) +
               " failed=" + u64s(a[2]);
        break;
    case FrCode::ContigStart:
        out += " reads=" + u64s(a[0]);
        break;
    case FrCode::ContigDone:
        out += std::string(" status=") + runStatusName(a[0]) +
               " targets=" + u64s(a[1]) +
               " busy=" + u64s(a[2]);
        break;
    case FrCode::Barrier:
        out += " contigs=" + u64s(a[0]);
        break;
    case FrCode::ContigSkipped:
        out += " reads=" + u64s(a[0]);
        break;
    case FrCode::JobCancelled:
        out += " skipped=" + u64s(a[0]) +
               " contigs=" + u64s(a[1]);
        break;
    case FrCode::StagePlan:
        out += " targets=" + u64s(a[0]);
        break;
    case FrCode::StagePrepare:
        out += " targets=" + u64s(a[0]);
        break;
    case FrCode::StageExecute:
        out += " targets=" + u64s(a[0]) +
               " maxlat=" + u64s(a[1]);
        break;
    case FrCode::StageApply:
        out += " realigned=" + u64s(a[0]);
        break;
    case FrCode::ShardPlace:
        out += " shard=" + u64s(a[0]) + " targets=" + u64s(a[1]);
        break;
    case FrCode::ShardSteal:
        out += " shard=" + u64s(a[0]) + " from=" + u64s(a[1]);
        break;
    case FrCode::Dispatch:
        out += " targets=" + u64s(a[0]);
        break;
    case FrCode::FleetLease:
        out += " cards=" + u64s(a[0]) + " units=" + u64s(a[1]);
        break;
    case FrCode::FleetMerge:
        out += " targets=" + u64s(a[0]) + " steals=" + u64s(a[1]);
        break;
    case FrCode::FleetRelease:
        out += " cards=" + u64s(a[0]);
        break;
    case FrCode::CrcMismatch:
        out += " target=" + u64s(a[0]) + " unit=" + u64s(a[1]) +
               " side=" + (a[2] ? "output" : "input");
        break;
    case FrCode::WatchdogTrip:
        out += " target=" + u64s(a[0]) + " unit=" + u64s(a[1]) +
               " waited=" + u64s(a[2]);
        break;
    case FrCode::Quarantine:
        out += " unit=" + u64s(a[0]) + " strikes=" + u64s(a[1]);
        break;
    case FrCode::Retry:
        out += " target=" + u64s(a[0]) + " attempt=" + u64s(a[1]);
        break;
    case FrCode::Migrate:
        out += " targets=" + u64s(a[0]) + " from=" + u64s(a[1]);
        break;
    case FrCode::Fallback:
        out +=
            " target=" + u64s(a[0]) + " attempts=" + u64s(a[1]);
        break;
    case FrCode::TargetFailed:
        out +=
            " target=" + u64s(a[0]) + " attempts=" + u64s(a[1]);
        break;
    case FrCode::FaultInjected:
        out += " spec=" + u64s(a[0]) +
               " occurrence=" + u64s(a[2]) + " '" +
               internedString(static_cast<uint32_t>(a[3])) + "'";
        break;
    default:
        out += " a0=" + u64s(a[0]) + " a1=" + u64s(a[1]) +
               " a2=" + u64s(a[2]) + " a3=" + u64s(a[3]);
        break;
    }
    return out;
}

std::string
FlightRecorder::formatJson(const FrEvent &e) const
{
    std::string out = "{\"vtime\":" + u64s(e.vtime) +
                      ",\"contig\":" + std::to_string(e.contig) +
                      ",\"card\":" + std::to_string(e.card) +
                      ",\"seq\":" + u64s(e.seq);
    out += std::string(",\"severity\":\"") +
           frSeverityName(e.sev) + "\"";
    out += std::string(",\"category\":\"") +
           frCategoryName(e.cat) + "\"";
    out += std::string(",\"code\":\"") + frCodeName(e.code) + "\"";
    out += ",\"args\":[" + u64s(e.args[0]) + "," +
           u64s(e.args[1]) + "," + u64s(e.args[2]) + "," +
           u64s(e.args[3]) + "]";
    if (static_cast<FrCode>(e.code) == FrCode::FaultInjected) {
        std::string spec = internedString(
            static_cast<uint32_t>(e.args[3]));
        std::string escaped;
        for (char c : spec) {
            if (c == '"' || c == '\\')
                escaped += '\\';
            escaped += c;
        }
        out += ",\"spec\":\"" + escaped + "\"";
    }
    out += "}";
    return out;
}

namespace {
thread_local FlightContext *tls_context = nullptr;
} // anonymous namespace

FlightContext::FlightContext(int32_t contig)
    : prev_(tls_context), contig_(contig)
{
    tls_context = this;
}

FlightContext::~FlightContext() { tls_context = prev_; }

int32_t
FlightContext::currentContig()
{
    return tls_context ? tls_context->contig_ : -1;
}

uint32_t
FlightContext::nextSeq()
{
    if (tls_context)
        return tls_context->seq_++;
    return tls_fallback_seq++;
}

} // namespace obs
} // namespace iracc
