/**
 * @file
 * Post-mortem bundles: the deterministic on-disk incident record a
 * realignment job writes when it finishes Degraded or Failed (or
 * on demand, iracc_cli --postmortem).
 *
 * A bundle is a directory of small text files:
 *
 *   events.log      canonically ordered flight-recorder event log
 *                   (obs/flight_recorder.hh formatText lines) --
 *                   byte-identical for a given (workload, seed,
 *                   fault plan, cards, stealing) regardless of
 *                   thread count or wall-clock jitter
 *   events.json     the same events, one JSON object per line
 *   metrics.json    MetricsRegistry::writeJson snapshot ("{}" when
 *                   the job ran uninstrumented)
 *   summary.json    run health: status, degraded/failed contigs,
 *                   RecoveryStats, per-card fleet rows, per-target
 *                   latency percentiles in both clock domains
 *   fault_plan.txt  the active per-card FaultPlans in replayable
 *                   canonical text form (fault/fault.hh), one
 *                   "card <k> <plan>" line per card
 *
 * tools/iracc_postmortem renders a bundle into a human-readable
 * incident report; tests/postmortem_test.cc golden-matches
 * events.log and replays fault_plan.txt through the corpus
 * machinery.
 */

#ifndef IRACC_CORE_POSTMORTEM_HH
#define IRACC_CORE_POSTMORTEM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/realign_job.hh"
#include "obs/metrics.hh"

namespace iracc {

/** Identity of the run a bundle describes. */
struct PostmortemOptions
{
    /** Bundle directory; created (recursively) when missing. */
    std::string dir;

    /** Backend registry name (summary.json provenance). */
    std::string backend;

    /** Job RNG seed. */
    uint64_t seed = 0;

    /** Provisioned fleet shape. */
    uint32_t cards = 1;
    bool stealing = false;

    /** Canonical per-card FaultPlan text (fault/fault.hh); may be
     *  shorter than `cards` (remaining cards are fault-free). */
    std::vector<std::string> faultPlans;
};

/**
 * Write the bundle for @p job into opt.dir.  Snapshots the global
 * FlightRecorder (canonical order); @p metrics may be null.
 * @return the bundle directory path.
 */
std::string writePostmortemBundle(const RealignJobResult &job,
                                  const PostmortemOptions &opt,
                                  const obs::MetricsRegistry *metrics
                                  = nullptr);

} // namespace iracc

#endif // IRACC_CORE_POSTMORTEM_HH
