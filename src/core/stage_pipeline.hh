/**
 * @file
 * Backend-facing contract of the staged realignment pipeline.
 *
 * The realign layer (realign/stages.hh) provides the stage data
 * and the Plan / Prepare / Apply implementations; this header adds
 * the piece that differs per backend -- the Execute stage -- as a
 * small interface, plus the driver that runs one contig through
 * Plan -> Prepare -> Execute -> Apply and assembles the uniform
 * BackendRunResult.  The software baselines and the simulated
 * accelerated system plug in here and share everything else,
 * which is what preserves the bit-equality guarantee.
 */

#ifndef IRACC_CORE_STAGE_PIPELINE_HH
#define IRACC_CORE_STAGE_PIPELINE_HH

#include <memory>
#include <vector>

#include "fault/fault.hh"
#include "genomics/read.hh"
#include "obs/latency_histogram.hh"
#include "genomics/reference.hh"
#include "host/accelerated_system.hh"
#include "host/hardened_executor.hh"
#include "realign/realigner.hh"
#include "realign/stages.hh"
#include "sim/perf_monitor.hh"

namespace iracc {

namespace obs {
struct Observability;
}

/** Host-measured wall-clock seconds per pipeline stage. */
struct StageTimes
{
    double planSeconds = 0.0;
    double prepareSeconds = 0.0;
    double executeSeconds = 0.0;
    double applySeconds = 0.0;

    double
    hostSeconds() const
    {
        return planSeconds + prepareSeconds + applySeconds;
    }
};

/** Result of one backend run over a contig. */
struct BackendRunResult
{
    RealignStats stats;

    /**
     * End-to-end runtime in seconds.  For software backends this
     * is measured host wall-clock; for accelerated backends it is
     * the simulated FPGA time (cycles / clock) plus measured host
     * pre/post-processing, matching the paper's end-to-end
     * measurement (Section V-A).
     */
    double seconds = 0.0;

    /** True when `seconds` came from the cycle-level simulator. */
    bool simulated = false;

    /** Accelerated backends: simulated-FPGA seconds only. */
    double fpgaSeconds = 0.0;

    /** Accelerated backends: DMA share of total cycles. */
    double dmaFraction = 0.0;

    /** Accelerated backends: mean unit utilization. */
    double unitUtilization = 0.0;

    /** Per-stage breakdown of the pipeline run. */
    StageTimes stageTimes;

    /**
     * Accelerated backends: performance-counter snapshot
     * (perf.enabled == false unless the backend was created with
     * counters on; see makeBackend and docs/OBSERVABILITY.md).
     */
    PerfReport perf;

    /**
     * Hardened backends: recovery-event counters and run health
     * (Ok for every other backend; see docs/ROBUSTNESS.md).
     */
    RecoveryStats recovery;
    RunStatus status = RunStatus::Ok;

    /**
     * Accelerated backends: per-card fleet dispatch accounting
     * (empty for software backends; see docs/OBSERVABILITY.md,
     * `fleet.*`).
     */
    FleetExecStats fleet;

    /**
     * Accelerated backends: always-on per-target latency
     * percentiles, dispatch to completion, in both clock domains
     * (empty for software backends).  Mergeable exactly across
     * contigs/runs; see docs/OBSERVABILITY.md.
     */
    obs::LatencyHistogram targetLatencyCycles;
    obs::LatencyHistogram targetLatencyNanos;
};

/** Uniform outcome of a backend's Execute stage. */
struct ExecuteOutcome
{
    /** One decision per prepared target, index-aligned. */
    std::vector<ConsensusDecision> decisions;

    /** Kernel work counters of the stage. */
    WhdStats whd;

    /**
     * Execute-stage seconds: measured wall-clock for software,
     * simulated FPGA time plus output-conversion host time for
     * accelerated backends.
     */
    double seconds = 0.0;

    /** True when `seconds` came from the cycle-level simulator. */
    bool simulated = false;

    double fpgaSeconds = 0.0;
    double dmaFraction = 0.0;
    double unitUtilization = 0.0;
    PerfReport perf;

    /** Hardened backends: recovery counters and run health. */
    RecoveryStats recovery;
    RunStatus status = RunStatus::Ok;

    /** Accelerated backends: per-card fleet accounting. */
    FleetExecStats fleet;

    /** Accelerated backends: always-on per-target latency from
     *  dispatch to completion (cycle domain + modeled ns). */
    obs::LatencyHistogram targetLatencyCycles;
    obs::LatencyHistogram targetLatencyNanos;
};

/**
 * The per-backend Execute stage.  Instances are created per
 * contig (RealignerBackend::makeExecuteStage), so a stage may
 * hold per-contig state; execute() itself is called exactly once.
 */
class ExecuteStage
{
  public:
    virtual ~ExecuteStage() = default;

    /** True when Prepare must also produce the DMA byte images. */
    virtual bool needsMarshalledTargets() const = 0;

    /**
     * Run the kernel over every prepared target.
     *
     * @param rng_seed base seed of this run's deterministic RNG
     *        streams (per-contig streams are derived from it)
     */
    virtual ExecuteOutcome execute(const PreparedContig &prepared,
                                   uint64_t rng_seed) = 0;
};

/** Execute stage of the software baselines (WHD kernel on host). */
class SoftwareExecuteStage : public ExecuteStage
{
  public:
    explicit SoftwareExecuteStage(SoftwareRealignerConfig cfg)
        : cfg(std::move(cfg))
    {
    }

    bool needsMarshalledTargets() const override { return false; }

    ExecuteOutcome execute(const PreparedContig &prepared,
                           uint64_t rng_seed) override;

  private:
    SoftwareRealignerConfig cfg;
};

/**
 * Execute stage of the accelerated backends: delegates to
 * AcceleratedIrSystem::executeTargets, which borrows a card lease
 * (fresh per-card virtual timelines) from the backend's shared
 * CardFleet.  Holds a reference; the owning backend must outlive
 * the stage.
 */
class AcceleratedExecuteStage : public ExecuteStage
{
  public:
    explicit AcceleratedExecuteStage(const AcceleratedIrSystem &sys)
        : system(sys)
    {
    }

    bool needsMarshalledTargets() const override { return true; }

    ExecuteOutcome execute(const PreparedContig &prepared,
                           uint64_t rng_seed) override;

  private:
    const AcceleratedIrSystem &system;
};

/**
 * Execute stage of the hardened accelerated backends: borrows a
 * card lease from the backend's shared CardFleet and delegates to
 * hardenedExecuteFleetTargets (host/hardened_executor.hh), which
 * wraps the leased cards with checksum verification, a watchdog,
 * bounded retry, software fallback, unit quarantine, and
 * cross-card migration, and surfaces RecoveryStats / RunStatus
 * through ExecuteOutcome.  Each lease materializes fresh per-card
 * simulators and fault injectors, so the fleet's FaultPlans
 * restart their occurrence counters per contig.  Holds a
 * reference; the owning backend must outlive the stage.
 */
class HardenedExecuteStage : public ExecuteStage
{
  public:
    HardenedExecuteStage(const CardFleet &fleet, HardenPolicy policy)
        : fleet(fleet), policy(policy)
    {
    }

    bool needsMarshalledTargets() const override { return true; }

    ExecuteOutcome execute(const PreparedContig &prepared,
                           uint64_t rng_seed) override;

  private:
    const CardFleet &fleet;
    HardenPolicy policy;
};

/**
 * Drive one contig through Plan -> Prepare -> Execute -> Apply.
 *
 * @param targets         target-creation knobs
 * @param exec            the backend's Execute stage
 * @param prepare_threads worker threads for input assembly
 * @param candidates      optional pre-partitioned read-index
 *                        subset for the Plan stage (see planStage)
 * @param rng_seed        base seed for deterministic RNG streams
 * @param obs             optional host observability: one trace
 *                        span per stage, per-stage
 *                        `realign.stage.<stage>.seconds`
 *                        histograms and realignment work counters
 *                        (null = uninstrumented)
 */
BackendRunResult runContigPipeline(
    const ReferenceGenome &ref, int32_t contig,
    std::vector<Read> &reads, const TargetCreationParams &targets,
    ExecuteStage &exec, uint32_t prepare_threads = 1,
    const std::vector<uint32_t> *candidates = nullptr,
    uint64_t rng_seed = kRealignStreamSeed,
    obs::Observability *obs = nullptr);

} // namespace iracc

#endif // IRACC_CORE_STAGE_PIPELINE_HH
