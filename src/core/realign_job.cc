#include "core/realign_job.hh"

#include <algorithm>
#include <map>
#include <string>
#include <thread>

#include "core/postmortem.hh"
#include "obs/flight_recorder.hh"
#include "obs/obs.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "util/timer.hh"

namespace iracc {

RealignSession::RealignSession(
    std::unique_ptr<const RealignerBackend> backend,
    RealignJobConfig config)
    : be(std::move(backend)), cfg(config)
{
    fatal_if(!be, "RealignSession needs a backend");
    fatal_if(cfg.threads == 0, "realign job needs >= 1 thread");
}

RealignJobResult
RealignSession::run(const ReferenceGenome &ref,
                    std::vector<Read> &reads) const
{
    return run(ref, reads, cfg);
}

RealignJobResult
RealignSession::run(const ReferenceGenome &ref,
                    const std::vector<int32_t> &contigs,
                    std::vector<Read> &reads) const
{
    return run(ref, contigs, reads, cfg);
}

RealignJobResult
RealignSession::run(const ReferenceGenome &ref,
                    std::vector<Read> &reads,
                    const RealignJobConfig &job_cfg) const
{
    std::vector<int32_t> contigs;
    contigs.reserve(8);
    for (const Read &r : reads) {
        if (!std::binary_search(contigs.begin(), contigs.end(),
                                r.contig)) {
            contigs.insert(std::lower_bound(contigs.begin(),
                                            contigs.end(), r.contig),
                           r.contig);
        }
    }
    return run(ref, contigs, reads, job_cfg);
}

RealignJobResult
RealignSession::run(const ReferenceGenome &ref,
                    const std::vector<int32_t> &contigs,
                    std::vector<Read> &reads,
                    const RealignJobConfig &job_cfg) const
{
    // Shadow the session config on purpose: everything below reads
    // the per-call configuration.
    const RealignJobConfig &cfg = job_cfg;
    fatal_if(cfg.threads == 0, "realign job needs >= 1 thread");
    Timer wall;
    RealignJobResult job;

    // The submitting thread gets driver coordinates (contig -1)
    // for the job-lifecycle events; each contig's worker installs
    // its own context in runOne below.
    obs::FlightContext driverCtx(-1);
    if (contigs.empty()) {
        job.wallSeconds = wall.seconds();
        return job;
    }

    // Partition the read set by contig once; each contig's worker
    // only ever touches its own (disjoint) read indices, so the
    // shared read vector can be mutated concurrently.
    std::map<int32_t, std::vector<uint32_t>> byContig;
    for (int32_t c : contigs)
        byContig[c]; // realign requested contigs even if empty
    for (uint32_t i = 0; i < reads.size(); ++i) {
        auto it = byContig.find(reads[i].contig);
        if (it != byContig.end())
            it->second.push_back(i);
    }

    std::vector<int32_t> order;
    order.reserve(byContig.size());
    for (const auto &kv : byContig)
        order.push_back(kv.first);

    const FleetConfig *shape = be->fleetShape();
    obs::frEmit(obs::FrSeverity::Info, obs::FrCategory::Job,
                obs::FrCode::JobStart, 0, -1, order.size(),
                reads.size(), shape ? shape->cards : 0,
                shape && shape->stealing ? 1 : 0);

    // Workers beyond the contig count or the physical core count
    // only add contention (each accelerated contig runs its own
    // cycle-level simulation, a cache-heavy CPU-bound job), so cap
    // at both.  Results are bit-identical for any worker count; the
    // cap only affects wall-clock.
    const uint32_t hw =
        std::max(1u, std::thread::hardware_concurrency());
    const uint32_t workers = static_cast<uint32_t>(std::min<size_t>(
        std::min<size_t>(cfg.threads, hw), order.size()));

    // Per-contig results land in preallocated slots and are merged
    // in ascending contig order at the barrier, so the job result
    // is bit-identical for any worker count.
    obs::Observability *obsv = cfg.obs;
    std::vector<ContigJobResult> slots(order.size());
    // Skip markers for cooperatively cancelled contigs; written by
    // the worker that owned the slot, read after the barrier.
    std::vector<uint8_t> skipped(order.size(), 0);
    std::atomic<uint64_t> contigsDone{0};
    auto notifyProgress = [&](size_t i, bool skip) {
        if (!cfg.onProgress)
            return;
        RealignJobProgress p;
        p.contig = order[i];
        p.contigsDone =
            contigsDone.fetch_add(1, std::memory_order_relaxed) + 1;
        p.contigsTotal = order.size();
        p.skipped = skip;
        if (skip) {
            p.status = RunStatus::Failed;
        } else {
            p.status = slots[i].run.status;
            p.targets = slots[i].run.stats.targets;
            p.vtime = slots[i].run.fleet.busyCycles();
        }
        cfg.onProgress(p);
    };
    auto runOne = [&](size_t i) {
        const int32_t contig = order[i];
        obs::FlightContext fctx(contig);
        slots[i].contig = contig;
        // Cooperative cancellation: a contig that has not started
        // when the token trips is skipped outright -- its reads
        // stay unrealigned (the Failed semantic) and the worker
        // never touches the fleet.
        if (cfg.cancel &&
            cfg.cancel->load(std::memory_order_relaxed)) {
            skipped[i] = 1;
            slots[i].run.status = RunStatus::Failed;
            obs::frEmit(obs::FrSeverity::Warn, obs::FrCategory::Job,
                        obs::FrCode::ContigSkipped, 0, -1,
                        byContig[contig].size());
            notifyProgress(i, true);
            return;
        }
        obs::frEmit(obs::FrSeverity::Info, obs::FrCategory::Job,
                    obs::FrCode::ContigStart, 0, -1,
                    byContig[contig].size());
        obs::ScopedSpan span(obsv,
                             obsv && obsv->on()
                                 ? "contig " + std::to_string(contig)
                                 : std::string(),
                             "realign.job",
                             "realign.job.contig_seconds");
        auto exec = be->makeExecuteStage(workers);
        slots[i].run = runContigPipeline(
            ref, contig, reads, be->targetParams(), *exec,
            be->hostThreads(), &byContig[contig], cfg.seed, obsv);
        obs::frEmit(obs::FrSeverity::Info, obs::FrCategory::Job,
                    obs::FrCode::ContigDone, 0, -1,
                    static_cast<uint64_t>(slots[i].run.status),
                    slots[i].run.stats.targets,
                    slots[i].run.fleet.busyCycles());
        notifyProgress(i, false);
    };

    if (workers <= 1) {
        for (size_t i = 0; i < order.size(); ++i)
            runOne(i);
    } else {
        ThreadPool pool(workers);
        if (obsv && obsv->metrics)
            obs::instrumentThreadPool(pool, *obsv->metrics,
                                      "realign.pool");
        for (size_t i = 0; i < order.size(); ++i)
            pool.submit([&runOne, i] { runOne(i); });
        // The barrier-wait span measures how long the submitting
        // thread idles at the fork-join point.
        obs::ScopedSpan barrier(obsv, "job barrier", "realign.job",
                                "realign.job.barrier_wait_seconds");
        pool.waitIdle();
        barrier.close();
    }

    obs::frEmit(obs::FrSeverity::Info, obs::FrCategory::Job,
                obs::FrCode::Barrier, 0, -1, order.size());
    if (obsv && obsv->metrics)
        obsv->metrics->counter("realign.job.contigs")
            .add(order.size());

    // Barrier reached: deterministic in-order reduction.
    job.contigs = std::move(slots);
    for (size_t i = 0; i < job.contigs.size(); ++i) {
        if (!skipped[i])
            continue;
        job.cancelled = true;
        job.skippedContigs.push_back(job.contigs[i].contig);
    }
    for (const ContigJobResult &c : job.contigs) {
        job.stats.merge(c.run.stats);
        job.seconds += c.run.seconds;
        job.criticalPathSeconds =
            std::max(job.criticalPathSeconds, c.run.seconds);
        job.fpgaSeconds += c.run.fpgaSeconds;
        job.simulated = job.simulated || c.run.simulated;
        // Fleet runs already span one pid per card; stride the
        // contig id so merged traces keep one process per
        // (contig, card).  Single-card runs keep pid = contig.
        job.perf.merge(c.run.perf, static_cast<uint32_t>(c.contig),
                       c.run.perf.pidSpan > 1 ? c.run.perf.pidSpan
                                              : 0);
        job.fleet.merge(c.run.fleet);
        job.recovery.merge(c.run.recovery);
        job.targetLatencyCycles.merge(c.run.targetLatencyCycles);
        job.targetLatencyNanos.merge(c.run.targetLatencyNanos);
        job.status = worseStatus(job.status, c.run.status);
        if (c.run.status == RunStatus::Degraded)
            job.degradedContigs.push_back(c.contig);
        else if (c.run.status == RunStatus::Failed)
            job.failedContigs.push_back(c.contig);
    }
    if (job.cancelled) {
        obs::frEmit(obs::FrSeverity::Warn, obs::FrCategory::Job,
                    obs::FrCode::JobCancelled, 0, -1,
                    job.skippedContigs.size(), order.size());
    }
    obs::frEmit(obs::FrSeverity::Info, obs::FrCategory::Job,
                obs::FrCode::JobDone, 0, -1,
                static_cast<uint64_t>(job.status),
                job.degradedContigs.size(),
                job.failedContigs.size());

    if (!cfg.postmortemDir.empty() &&
        (cfg.postmortemAlways || job.status != RunStatus::Ok)) {
        PostmortemOptions opt;
        opt.dir = cfg.postmortemDir;
        opt.backend = be->name();
        opt.seed = cfg.seed;
        if (shape != nullptr) {
            opt.cards = shape->cards;
            opt.stealing = shape->stealing;
            for (const FaultPlan &plan : shape->cardPlans)
                opt.faultPlans.push_back(plan.describe());
        }
        job.postmortemPath = writePostmortemBundle(
            job, opt, obsv ? obsv->metrics : nullptr);
    }

    job.wallSeconds = wall.seconds();
    return job;
}

RealignJobResult
RealignSession::runContig(const ReferenceGenome &ref, int32_t contig,
                          std::vector<Read> &reads) const
{
    return run(ref, std::vector<int32_t>{contig}, reads);
}

namespace {

/**
 * Fold one group's job result into the streaming aggregate.  Every
 * component reduction is commutative and associative (counters add,
 * statuses take the worst, histograms add bucket counts), so the
 * aggregate is independent of how the stream was cut into groups --
 * the heart of the streaming/in-memory bit-equality contract.
 */
void
mergeJobResult(RealignJobResult *agg, RealignJobResult &&part)
{
    for (ContigJobResult &c : part.contigs)
        agg->contigs.push_back(std::move(c));
    agg->stats.merge(part.stats);
    agg->seconds += part.seconds;
    agg->wallSeconds += part.wallSeconds;
    agg->criticalPathSeconds =
        std::max(agg->criticalPathSeconds, part.criticalPathSeconds);
    agg->fpgaSeconds += part.fpgaSeconds;
    agg->simulated = agg->simulated || part.simulated;
    // trace_pid 0 with stride 1 appends part's trace events with
    // their per-contig pids intact.
    agg->perf.merge(part.perf, 0, 1);
    agg->perf.pidSpan = std::max(agg->perf.pidSpan, part.perf.pidSpan);
    agg->fleet.merge(part.fleet);
    agg->recovery.merge(part.recovery);
    agg->targetLatencyCycles.merge(part.targetLatencyCycles);
    agg->targetLatencyNanos.merge(part.targetLatencyNanos);
    agg->status = worseStatus(agg->status, part.status);
    for (int32_t c : part.degradedContigs)
        agg->degradedContigs.push_back(c);
    for (int32_t c : part.failedContigs)
        agg->failedContigs.push_back(c);
    agg->cancelled = agg->cancelled || part.cancelled;
    for (int32_t c : part.skippedContigs)
        agg->skippedContigs.push_back(c);
    if (!part.postmortemPath.empty())
        agg->postmortemPath = part.postmortemPath;
}

} // namespace

StreamRealignResult
RealignSession::runStreamed(
    const ReferenceGenome &ref, ReadBatchSource &source,
    const std::function<void(std::vector<Read> &reads)> &sink) const
{
    return runStreamed(ref, source, sink, cfg);
}

StreamRealignResult
RealignSession::runStreamed(
    const ReferenceGenome &ref, ReadBatchSource &source,
    const std::function<void(std::vector<Read> &reads)> &sink,
    const RealignJobConfig &job_cfg) const
{
    fatal_if(job_cfg.threads == 0, "realign job needs >= 1 thread");
    Timer wall;
    StreamRealignResult out;
    uint64_t contigsDoneBefore = 0;

    // Groups of up to `threads` contig batches keep every worker
    // busy while bounding memory at threads x the largest batch.
    const size_t groupSize = job_cfg.threads;
    bool end = false;
    while (!end) {
        if (job_cfg.cancel &&
            job_cfg.cancel->load(std::memory_order_relaxed)) {
            out.job.cancelled = true;
            break;
        }
        std::vector<int32_t> contigs;
        std::vector<Read> reads;
        while (contigs.size() < groupSize) {
            int32_t contig = 0;
            std::vector<Read> batch;
            StreamStatus st =
                source.nextBatch(&contig, &batch, &out.parseError);
            if (st == StreamStatus::End) {
                end = true;
                break;
            }
            if (st == StreamStatus::Error) {
                // Discard the partially collected group: the
                // caller fails the job, so realigning it would
                // only waste cycles on output that gets dropped.
                out.parseOk = false;
                out.job.wallSeconds = wall.seconds();
                return out;
            }
            contigs.push_back(contig);
            ++out.batches;
            reads.reserve(reads.size() + batch.size());
            for (Read &r : batch)
                reads.push_back(std::move(r));
        }
        if (contigs.empty())
            break;

        RealignJobConfig groupCfg = job_cfg;
        if (job_cfg.onProgress) {
            const uint64_t base = contigsDoneBefore;
            const uint64_t seen = base + contigs.size();
            groupCfg.onProgress =
                [base, seen,
                 &job_cfg](const RealignJobProgress &p) {
                    RealignJobProgress q = p;
                    q.contigsDone += base;
                    // Lower bound: the stream's length is unknown.
                    q.contigsTotal = seen;
                    job_cfg.onProgress(q);
                };
        }
        mergeJobResult(&out.job,
                       run(ref, contigs, reads, groupCfg));
        contigsDoneBefore += contigs.size();
        out.readsStreamed += reads.size();
        sink(reads);
        if (out.job.cancelled)
            break;
    }

    out.job.wallSeconds = wall.seconds();
    return out;
}

RealignSession
makeSession(const std::string &backend_name, RealignJobConfig config,
            bool perf_counters, bool perf_trace)
{
    return RealignSession(
        makeBackend(backend_name, perf_counters, perf_trace), config);
}

} // namespace iracc
