#include "core/postmortem.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "fault/fault.hh"
#include "obs/flight_recorder.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace iracc {

namespace {

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    fatal_if(!os, "postmortem: cannot write '%s'", path.c_str());
    os << content;
    fatal_if(!os.good(), "postmortem: short write to '%s'",
             path.c_str());
}

void
writeLatency(std::ostringstream &os, const obs::LatencyHistogram &h)
{
    os << "{\"count\":" << h.count() << ",\"sum\":" << h.total()
       << ",\"min\":" << h.min() << ",\"max\":" << h.max()
       << ",\"p50\":" << h.p50() << ",\"p90\":" << h.p90()
       << ",\"p99\":" << h.p99() << ",\"p999\":" << h.p999()
       << "}";
}

std::string
summaryJson(const RealignJobResult &job,
            const PostmortemOptions &opt)
{
    std::ostringstream os;
    os << "{\"version\":1";
    os << ",\"backend\":" << jsonQuote(opt.backend);
    os << ",\"seed\":" << opt.seed;
    os << ",\"cards\":" << opt.cards;
    os << ",\"stealing\":" << (opt.stealing ? "true" : "false");
    os << ",\"status\":" << jsonQuote(runStatusName(job.status));
    os << ",\"contigs\":" << job.contigs.size();
    os << ",\"degradedContigs\":[";
    for (size_t i = 0; i < job.degradedContigs.size(); ++i)
        os << (i ? "," : "") << job.degradedContigs[i];
    os << "],\"failedContigs\":[";
    for (size_t i = 0; i < job.failedContigs.size(); ++i)
        os << (i ? "," : "") << job.failedContigs[i];
    os << "]";

    const RecoveryStats &r = job.recovery;
    os << ",\"recovery\":{"
       << "\"faultsInjected\":" << r.faultsInjected;
    for (size_t k = 0; k < kNumFaultKinds; ++k) {
        os << "," << jsonQuote(std::string("faults.") +
                               faultKindName(
                                   static_cast<FaultKind>(k)))
           << ":" << r.faultsByKind[k];
    }
    os << ",\"checksumInputCatches\":" << r.checksumInputCatches
       << ",\"checksumOutputCatches\":" << r.checksumOutputCatches
       << ",\"watchdogCatches\":" << r.watchdogCatches
       << ",\"retries\":" << r.retries
       << ",\"retrySuccesses\":" << r.retrySuccesses
       << ",\"softwareFallbacks\":" << r.softwareFallbacks
       << ",\"quarantinedUnits\":" << r.quarantinedUnits
       << ",\"quarantinedCards\":" << r.quarantinedCards
       << ",\"migratedTargets\":" << r.migratedTargets
       << ",\"staleResponses\":" << r.staleResponses
       << ",\"failedTargets\":" << r.failedTargets << "}";

    os << ",\"fleet\":[";
    for (size_t i = 0; i < job.fleet.cards.size(); ++i) {
        const FleetCardExecStats &c = job.fleet.cards[i];
        os << (i ? "," : "") << "{\"card\":" << c.card
           << ",\"busyCycles\":" << c.busyCycles
           << ",\"targets\":" << c.targets
           << ",\"shards\":" << c.shards
           << ",\"steals\":" << c.steals
           << ",\"migrations\":" << c.migrations << "}";
    }
    os << "]";

    os << ",\"latency\":{\"cycles\":";
    writeLatency(os, job.targetLatencyCycles);
    os << ",\"ns\":";
    writeLatency(os, job.targetLatencyNanos);
    os << "}";

    os << ",\"faultPlans\":[";
    for (size_t i = 0; i < opt.faultPlans.size(); ++i)
        os << (i ? "," : "") << jsonQuote(opt.faultPlans[i]);
    os << "]}";
    os << "\n";
    return os.str();
}

} // anonymous namespace

std::string
writePostmortemBundle(const RealignJobResult &job,
                      const PostmortemOptions &opt,
                      const obs::MetricsRegistry *metrics)
{
    fatal_if(opt.dir.empty(), "postmortem: empty bundle directory");
    std::error_code ec;
    std::filesystem::create_directories(opt.dir, ec);
    fatal_if(static_cast<bool>(ec),
             "postmortem: cannot create '%s': %s", opt.dir.c_str(),
             ec.message().c_str());

    obs::FlightRecorder &fr = obs::FlightRecorder::instance();
    std::vector<obs::FrEvent> events = fr.snapshot();

    std::ostringstream text, json;
    for (const obs::FrEvent &e : events) {
        text << fr.formatText(e) << "\n";
        json << fr.formatJson(e) << "\n";
    }

    std::ostringstream metricsDoc;
    if (metrics != nullptr)
        metrics->writeJson(metricsDoc);
    else
        metricsDoc << "{}";
    metricsDoc << "\n";

    std::ostringstream plans;
    plans << "# iracc post-mortem fault plans v1\n"
          << "# one replayable FaultPlan (fault/fault.hh text "
             "form) per card\n";
    for (uint32_t k = 0; k < opt.cards; ++k) {
        plans << "card " << k;
        if (k < opt.faultPlans.size() &&
            !opt.faultPlans[k].empty()) {
            plans << ' ' << opt.faultPlans[k];
        }
        plans << "\n";
    }

    const std::filesystem::path dir(opt.dir);
    writeFile((dir / "events.log").string(), text.str());
    writeFile((dir / "events.json").string(), json.str());
    writeFile((dir / "metrics.json").string(), metricsDoc.str());
    writeFile((dir / "summary.json").string(),
              summaryJson(job, opt));
    writeFile((dir / "fault_plan.txt").string(), plans.str());
    return opt.dir;
}

} // namespace iracc
