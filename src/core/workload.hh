/**
 * @file
 * Workload synthesis: the NA12878-substitute data sets every bench,
 * test, and example runs on.
 *
 * A workload is a scaled 22-autosome genome (GRCh37-proportional
 * lengths), a truth variant set per chromosome, and an aligned read
 * set produced by the read simulator with the primary-alignment
 * artifact model.  Everything is deterministic in (seed, scale,
 * coverage).
 */

#ifndef IRACC_CORE_WORKLOAD_HH
#define IRACC_CORE_WORKLOAD_HH

#include <cstdint>
#include <vector>

#include "genomics/karyotype.hh"
#include "genomics/mutator.hh"
#include "genomics/read.hh"
#include "genomics/read_simulator.hh"
#include "genomics/reference.hh"
#include "genomics/variant.hh"

namespace iracc {

/** Workload-synthesis parameters. */
struct WorkloadParams
{
    uint64_t seed = 0xADA12878;

    /** Chromosome length divisor vs real GRCh37 (see karyotype). */
    int64_t scaleDivisor = 1000;

    /** Minimum scaled chromosome length. */
    int64_t minContigLength = 20000;

    /** Chromosomes to build (1-based numbers); empty = all 22. */
    std::vector<int> chromosomes;

    /** Sequencing depth (paper data: 60-65x; default lighter). */
    double coverage = 30.0;

    /**
     * Depth of the matched-normal sample (germline variants only,
     * no somatic events); 0 = do not generate a normal.
     */
    double normalCoverage = 0.0;

    ReadSimParams readSim;
    VariantGenParams variants;
};

/** One chromosome's slice of the workload. */
struct ChromosomeWorkload
{
    int number = 0;          ///< 1-based autosome number
    int32_t contig = 0;      ///< contig index in the genome
    std::vector<Variant> truth;
    std::vector<Read> reads; ///< aligned reads (tumor/sample)
    /** Matched-normal reads (germline haplotype only); empty
     *  unless WorkloadParams::normalCoverage > 0. */
    std::vector<Read> normalReads;
    int64_t misalignedIndelReads = 0;
    int64_t indelSpanningReads = 0;
};

/** A complete synthesized workload. */
struct GenomeWorkload
{
    ReferenceGenome reference;
    std::vector<ChromosomeWorkload> chromosomes;

    /** @return the chromosome entry for 1-based number @p n. */
    const ChromosomeWorkload &chromosome(int n) const;

    int64_t totalReads() const;
};

/** Synthesize a workload (deterministic in the parameters). */
GenomeWorkload buildWorkload(const WorkloadParams &params);

} // namespace iracc

#endif // IRACC_CORE_WORKLOAD_HH
