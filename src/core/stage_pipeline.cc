#include "core/stage_pipeline.hh"

#include <string>

#include "obs/flight_recorder.hh"
#include "obs/obs.hh"
#include "util/timer.hh"

namespace iracc {

ExecuteOutcome
SoftwareExecuteStage::execute(const PreparedContig &prepared,
                              uint64_t rng_seed)
{
    ExecuteOutcome out;
    Timer t;

    SoftwareExecuteParams params;
    params.prune = cfg.prune;
    params.threads = cfg.threads;
    params.workAmplification = cfg.workAmplification;
    params.rngSeed = rng_seed;

    out.decisions = executeStageSoftware(prepared, params, &out.whd);
    out.seconds = t.seconds();
    out.simulated = false;
    return out;
}

ExecuteOutcome
AcceleratedExecuteStage::execute(const PreparedContig &prepared,
                                 uint64_t rng_seed)
{
    (void)rng_seed; // the accelerated datapath is RNG-free
    AccelExecuteResult run = system.executeTargets(prepared);

    ExecuteOutcome out;
    out.decisions = std::move(run.decisions);
    out.whd = run.fpga.whd;
    out.seconds = run.fpgaSeconds + run.hostSeconds;
    out.simulated = true;
    out.fpgaSeconds = run.fpgaSeconds;
    out.unitUtilization = run.fpga.meanUnitUtilization;
    if (run.makespan > 0) {
        out.dmaFraction =
            static_cast<double>(run.fpga.dmaBusyCycles) /
            static_cast<double>(run.makespan);
    }
    out.perf = std::move(run.perf);
    out.fleet = std::move(run.fleet);
    out.targetLatencyCycles = run.targetLatencyCycles;
    out.targetLatencyNanos = run.targetLatencyNanos;
    return out;
}

ExecuteOutcome
HardenedExecuteStage::execute(const PreparedContig &prepared,
                              uint64_t rng_seed)
{
    (void)rng_seed; // the accelerated datapath is RNG-free
    FleetLease lease = fleet.lease();
    HardenedExecuteResult run =
        hardenedExecuteFleetTargets(lease, prepared, policy);

    ExecuteOutcome out;
    out.decisions = std::move(run.decisions);
    out.whd = run.whd;
    out.seconds = run.fpgaSeconds + run.hostSeconds;
    out.simulated = true;
    out.fpgaSeconds = run.fpgaSeconds;
    out.unitUtilization = run.fpga.meanUnitUtilization;
    if (run.makespan > 0) {
        out.dmaFraction =
            static_cast<double>(run.fpga.dmaBusyCycles) /
            static_cast<double>(run.makespan);
    }
    out.perf = std::move(run.perf);
    out.recovery = run.recovery;
    out.status = run.status;
    out.fleet = std::move(run.fleet);
    out.targetLatencyCycles = run.targetLatencyCycles;
    out.targetLatencyNanos = run.targetLatencyNanos;
    return out;
}

BackendRunResult
runContigPipeline(const ReferenceGenome &ref, int32_t contig,
                  std::vector<Read> &reads,
                  const TargetCreationParams &targets,
                  ExecuteStage &exec, uint32_t prepare_threads,
                  const std::vector<uint32_t> *candidates,
                  uint64_t rng_seed, obs::Observability *obsv)
{
    BackendRunResult out;
    Timer t;

    // Plan: target creation + read claiming (no mutation).
    obs::ScopedSpan plan_span(obsv, "plan", "realign");
    ContigPlan plan = planStage(ref, contig, reads, targets,
                                candidates);
    plan_span.close();
    out.stageTimes.planSeconds = t.seconds();
    obs::frEmit(obs::FrSeverity::Debug, obs::FrCategory::Stage,
                obs::FrCode::StagePlan, 0, -1, plan.targets.size());

    // Prepare: consensus generation (+ marshalling when the
    // Execute stage consumes byte images).
    t.restart();
    obs::ScopedSpan prepare_span(obsv, "prepare", "realign");
    PreparedContig prepared =
        prepareStage(ref, reads, plan,
                     exec.needsMarshalledTargets(), prepare_threads);
    prepare_span.close();
    out.stageTimes.prepareSeconds = t.seconds();
    obs::frEmit(obs::FrSeverity::Debug, obs::FrCategory::Stage,
                obs::FrCode::StagePrepare, 0, -1,
                prepared.inputs.size());

    // Execute: the backend-specific kernel.  The span records host
    // wall-clock of the call (for accelerated backends that is the
    // simulation run); the histogram below records the modeled
    // stage seconds that StageTimes reports.
    obs::ScopedSpan exec_span(obsv, "execute", "realign");
    ExecuteOutcome outcome = exec.execute(prepared, rng_seed);
    exec_span.close();
    out.stageTimes.executeSeconds = outcome.seconds;
    obs::frEmit(obs::FrSeverity::Debug, obs::FrCategory::Stage,
                obs::FrCode::StageExecute, 0, -1,
                prepared.inputs.size(),
                outcome.targetLatencyCycles.max());

    // Apply: decision writeback + stats assembly.
    t.restart();
    obs::ScopedSpan apply_span(obsv, "apply", "realign");
    out.stats = applyStage(prepared, outcome.decisions, reads);
    apply_span.close();
    out.stageTimes.applySeconds = t.seconds();
    obs::frEmit(obs::FrSeverity::Debug, obs::FrCategory::Stage,
                obs::FrCode::StageApply, 0, -1,
                out.stats.readsRealigned);

    out.stats.whd = outcome.whd;

    if (obsv && obsv->metrics) {
        obs::MetricsRegistry &reg = *obsv->metrics;
        reg.histogram("realign.stage.plan.seconds")
            .sample(out.stageTimes.planSeconds);
        reg.histogram("realign.stage.prepare.seconds")
            .sample(out.stageTimes.prepareSeconds);
        reg.histogram("realign.stage.execute.seconds")
            .sample(out.stageTimes.executeSeconds);
        reg.histogram("realign.stage.apply.seconds")
            .sample(out.stageTimes.applySeconds);
        reg.counter("realign.targets").add(out.stats.targets);
        reg.counter("realign.reads_considered")
            .add(out.stats.readsConsidered);
        reg.counter("realign.reads_realigned")
            .add(out.stats.readsRealigned);
        reg.counter("realign.consensuses_evaluated")
            .add(out.stats.consensusesEvaluated);

        // Fault/recovery counters, only when something happened so
        // fault-free runs keep a clean registry.
        const RecoveryStats &rec = outcome.recovery;
        if (rec.faultsInjected > 0) {
            reg.counter("fault.injected").add(rec.faultsInjected);
            for (size_t k = 0; k < kNumFaultKinds; ++k) {
                if (rec.faultsByKind[k] > 0) {
                    reg.counter(std::string("fault.injected.") +
                                faultKindName(
                                    static_cast<FaultKind>(k)))
                        .add(rec.faultsByKind[k]);
                }
            }
        }
        auto count = [&reg](const char *name, uint64_t value) {
            if (value > 0)
                reg.counter(name).add(value);
        };
        count("fault.checksum_input_catches",
              rec.checksumInputCatches);
        count("fault.checksum_output_catches",
              rec.checksumOutputCatches);
        count("fault.watchdog_catches", rec.watchdogCatches);
        count("fault.retries", rec.retries);
        count("fault.retry_successes", rec.retrySuccesses);
        count("fault.software_fallbacks", rec.softwareFallbacks);
        count("fault.quarantined_units", rec.quarantinedUnits);
        count("fault.quarantined_cards", rec.quarantinedCards);
        count("fault.migrated_targets", rec.migratedTargets);
        count("fault.stale_responses", rec.staleResponses);
        count("fault.failed_targets", rec.failedTargets);
        count("realign.contigs_degraded",
              outcome.status == RunStatus::Degraded ? 1 : 0);
        count("realign.contigs_failed",
              outcome.status == RunStatus::Failed ? 1 : 0);

        // Per-target latency percentiles (accelerated backends
        // only): exact merge into the job-wide distributions.
        if (outcome.targetLatencyCycles.count() > 0) {
            reg.latency("realign.target.latency_cycles")
                .merge(outcome.targetLatencyCycles);
            reg.latency("realign.target.latency_ns")
                .merge(outcome.targetLatencyNanos);
        }

        // Fleet dispatch accounting (accelerated backends only).
        if (outcome.fleet.enabled()) {
            reg.counter("fleet.card_busy_cycles")
                .add(outcome.fleet.busyCycles());
            count("fleet.steals", outcome.fleet.steals());
            count("fleet.migrations", outcome.fleet.migrations());
            for (const FleetCardExecStats &c : outcome.fleet.cards) {
                reg.histogram("fleet.queue_depth")
                    .sample(static_cast<double>(c.shards));
            }
        }
    }
    out.seconds = out.stageTimes.hostSeconds() + outcome.seconds;
    out.simulated = outcome.simulated;
    out.fpgaSeconds = outcome.fpgaSeconds;
    out.dmaFraction = outcome.dmaFraction;
    out.unitUtilization = outcome.unitUtilization;
    out.perf = std::move(outcome.perf);
    out.recovery = outcome.recovery;
    out.status = outcome.status;
    out.fleet = std::move(outcome.fleet);
    out.targetLatencyCycles = outcome.targetLatencyCycles;
    out.targetLatencyNanos = outcome.targetLatencyNanos;
    return out;
}

} // namespace iracc
