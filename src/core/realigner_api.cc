#include "core/realigner_api.hh"

#include "host/accelerated_system.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace iracc {

namespace {

/** Software baseline wrapper. */
class SoftwareBackend : public RealignerBackend
{
  public:
    SoftwareBackend(std::string name, std::string desc,
                    SoftwareRealignerConfig cfg)
        : backendName(std::move(name)), desc(std::move(desc)),
          engine(cfg)
    {
    }

    std::string name() const override { return backendName; }
    std::string description() const override { return desc; }

    BackendRunResult
    realignContig(const ReferenceGenome &ref, int32_t contig,
                  std::vector<Read> &reads) const override
    {
        BackendRunResult out;
        Timer t;
        out.stats = engine.realignContig(ref, contig, reads);
        out.seconds = t.seconds();
        out.simulated = false;
        return out;
    }

  private:
    std::string backendName;
    std::string desc;
    SoftwareRealigner engine;
};

/** Simulated-FPGA backend wrapper. */
class AcceleratedBackend : public RealignerBackend
{
  public:
    AcceleratedBackend(std::string name, std::string desc,
                       AccelConfig cfg, SchedulePolicy policy)
        : backendName(std::move(name)), desc(std::move(desc)),
          system(cfg, policy)
    {
    }

    std::string name() const override { return backendName; }
    std::string description() const override { return desc; }

    BackendRunResult
    realignContig(const ReferenceGenome &ref, int32_t contig,
                  std::vector<Read> &reads) const override
    {
        AcceleratedRunResult run = system.realignContig(ref, contig,
                                                        reads);
        BackendRunResult out;
        out.stats = run.realign;
        out.seconds = run.totalSeconds();
        out.simulated = true;
        out.fpgaSeconds = run.fpgaSeconds;
        out.unitUtilization = run.fpga.meanUnitUtilization;
        if (run.makespan > 0) {
            out.dmaFraction =
                static_cast<double>(run.fpga.dmaBusyCycles) /
                static_cast<double>(run.makespan);
        }
        out.perf = std::move(run.perf);
        return out;
    }

  private:
    std::string backendName;
    std::string desc;
    AcceleratedIrSystem system;
};

} // anonymous namespace

std::unique_ptr<RealignerBackend>
makeBackend(const std::string &name, bool perf_counters,
            bool perf_trace)
{
    SoftwareRealignerConfig sw;

    // Accelerated configurations pick up the observability flags;
    // applied below via this helper.
    auto accel = [&](AccelConfig cfg) {
        cfg.perfCounters = perf_counters;
        cfg.perfTrace = perf_trace;
        return cfg;
    };

    if (name == "gatk3") {
        sw.prune = false;
        sw.threads = 8;
        sw.workAmplification = kJvmWorkAmplification;
        return std::make_unique<SoftwareBackend>(
            name, "GATK3-style software IR, 8 threads", sw);
    }
    if (name == "gatk3-1t") {
        sw.prune = false;
        sw.threads = 1;
        sw.workAmplification = kJvmWorkAmplification;
        return std::make_unique<SoftwareBackend>(
            name, "GATK3-style software IR, 1 thread", sw);
    }
    if (name == "adam") {
        sw.prune = true;
        sw.threads = 8;
        sw.workAmplification = kJvmWorkAmplification;
        return std::make_unique<SoftwareBackend>(
            name, "ADAM-style optimized software IR, 8 threads", sw);
    }
    if (name == "native") {
        sw.prune = true;
        sw.threads = 8;
        sw.workAmplification = 1;
        return std::make_unique<SoftwareBackend>(
            name, "tuned native software IR, 8 threads", sw);
    }
    if (name == "iracc") {
        return std::make_unique<AcceleratedBackend>(
            name,
            "32 IR units, 32-wide data parallel, pruning, async",
            accel(AccelConfig::paperOptimized()),
            SchedulePolicy::AsynchronousParallel);
    }
    if (name == "iracc-taskp") {
        return std::make_unique<AcceleratedBackend>(
            name, "32 scalar IR units, synchronous batches",
            accel(AccelConfig::taskParallelOnly()),
            SchedulePolicy::SynchronousParallel);
    }
    if (name == "iracc-taskp-async") {
        return std::make_unique<AcceleratedBackend>(
            name, "32 scalar IR units, async scheduling",
            accel(AccelConfig::taskParallelOnly()),
            SchedulePolicy::AsynchronousParallel);
    }
    if (name == "hls") {
        return std::make_unique<AcceleratedBackend>(
            name, "SDAccel/HLS build: 16 scalar units, no pruning",
            accel(AccelConfig::hlsSdaccel()),
            SchedulePolicy::AsynchronousParallel);
    }
    fatal("unknown realigner backend '%s'", name.c_str());
}

std::vector<std::string>
backendNames()
{
    return {"gatk3",       "gatk3-1t",          "adam",
            "native",      "iracc",             "iracc-taskp",
            "iracc-taskp-async", "hls"};
}

} // namespace iracc
