#include "core/realigner_api.hh"

#include <algorithm>

#include "host/accelerated_system.hh"
#include "realign/whd_simd.hh"
#include "util/logging.hh"

namespace iracc {

namespace {

/** Software baseline backend: software Execute stage. */
class SoftwareBackend : public RealignerBackend
{
  public:
    SoftwareBackend(std::string name, std::string desc,
                    SoftwareRealignerConfig cfg)
        : backendName(std::move(name)), desc(std::move(desc)),
          cfg(std::move(cfg))
    {
    }

    std::string name() const override { return backendName; }
    std::string description() const override { return desc; }

    TargetCreationParams
    targetParams() const override
    {
        return cfg.targetParams;
    }

    uint32_t hostThreads() const override { return cfg.threads; }

    std::unique_ptr<ExecuteStage>
    makeExecuteStage(uint32_t concurrent_contigs) const override
    {
        // Contig-parallel jobs split the backend's target-level
        // workers across contigs instead of oversubscribing.
        SoftwareRealignerConfig stage_cfg = cfg;
        if (concurrent_contigs > 1) {
            stage_cfg.threads = std::max(
                1u, cfg.threads / concurrent_contigs);
        }
        return std::make_unique<SoftwareExecuteStage>(stage_cfg);
    }

  private:
    std::string backendName;
    std::string desc;
    SoftwareRealignerConfig cfg;
};

/** Simulated-FPGA backend: accelerated Execute stage. */
class AcceleratedBackend : public RealignerBackend
{
  public:
    AcceleratedBackend(std::string name, std::string desc,
                       FleetConfig fleet, SchedulePolicy policy)
        : backendName(std::move(name)), desc(std::move(desc)),
          system(std::move(fleet), policy)
    {
    }

    std::string name() const override { return backendName; }
    std::string description() const override { return desc; }

    std::unique_ptr<ExecuteStage>
    makeExecuteStage(uint32_t) const override
    {
        // executeTargets() draws a fresh lease from the backend's
        // shared CardFleet per call, so each contig gets its own
        // per-card virtual timelines while the fleet accumulates
        // the cross-contig accounting.
        return std::make_unique<AcceleratedExecuteStage>(system);
    }

    const FleetConfig *
    fleetShape() const override
    {
        return &system.fleetConfig();
    }

  private:
    std::string backendName;
    std::string desc;
    AcceleratedIrSystem system;
};

/** Hardened simulated-FPGA backend: self-healing Execute stage. */
class HardenedBackend : public RealignerBackend
{
  public:
    HardenedBackend(std::string name, std::string desc,
                    FleetConfig fleet_cfg, HardenPolicy policy)
        : backendName(std::move(name)), desc(std::move(desc)),
          fleet(std::move(fleet_cfg)), policy(policy)
    {
    }

    std::string name() const override { return backendName; }
    std::string description() const override { return desc; }

    std::unique_ptr<ExecuteStage>
    makeExecuteStage(uint32_t) const override
    {
        // Each stage (= contig) leases fresh per-card simulators
        // and FaultInjector instances from the shared fleet, so
        // the plans' occurrence counters restart per contig and
        // contig-parallel runs stay deterministic.
        return std::make_unique<HardenedExecuteStage>(fleet,
                                                      policy);
    }

    const FleetConfig *fleetShape() const override
    {
        return &fleet.config();
    }

  private:
    std::string backendName;
    std::string desc;
    CardFleet fleet;
    HardenPolicy policy;
};

/** Registry configuration of one accelerated backend name. */
struct AccelRegistryEntry
{
    const char *desc;
    AccelConfig cfg;
    SchedulePolicy policy;
};

bool
accelRegistryEntry(const std::string &name, AccelRegistryEntry *out)
{
    if (name == "iracc") {
        *out = {"32 IR units, 32-wide data parallel, pruning, async",
                AccelConfig::paperOptimized(),
                SchedulePolicy::AsynchronousParallel};
        return true;
    }
    if (name == "iracc-taskp") {
        *out = {"32 scalar IR units, synchronous batches",
                AccelConfig::taskParallelOnly(),
                SchedulePolicy::SynchronousParallel};
        return true;
    }
    if (name == "iracc-taskp-async") {
        *out = {"32 scalar IR units, async scheduling",
                AccelConfig::taskParallelOnly(),
                SchedulePolicy::AsynchronousParallel};
        return true;
    }
    if (name == "hls") {
        *out = {"SDAccel/HLS build: 16 scalar units, no pruning",
                AccelConfig::hlsSdaccel(),
                SchedulePolicy::AsynchronousParallel};
        return true;
    }
    return false;
}

} // anonymous namespace

BackendRunResult
RealignerBackend::realignContig(const ReferenceGenome &ref,
                                int32_t contig,
                                std::vector<Read> &reads) const
{
    auto exec = makeExecuteStage(1);
    return runContigPipeline(ref, contig, reads, targetParams(),
                             *exec, hostThreads());
}

std::unique_ptr<RealignerBackend>
makeSoftwareBackend(std::string name, std::string description,
                    SoftwareRealignerConfig config)
{
    fatal_if(config.threads == 0, "realigner needs >= 1 thread");
    fatal_if(config.workAmplification < 1.0,
             "work amplification must be >= 1.0");
    return std::make_unique<SoftwareBackend>(
        std::move(name), std::move(description), std::move(config));
}

std::unique_ptr<RealignerBackend>
makeAcceleratedBackend(std::string name, std::string description,
                       AccelConfig config, SchedulePolicy policy)
{
    return makeAcceleratedBackend(std::move(name),
                                  std::move(description),
                                  FleetConfig::singleCard(config),
                                  policy);
}

std::unique_ptr<RealignerBackend>
makeAcceleratedBackend(std::string name, std::string description,
                       FleetConfig fleet, SchedulePolicy policy)
{
    return std::make_unique<AcceleratedBackend>(
        std::move(name), std::move(description), std::move(fleet),
        policy);
}

std::unique_ptr<RealignerBackend>
makeHardenedBackend(std::string name, std::string description,
                    AccelConfig config, FaultPlan plan,
                    HardenPolicy policy)
{
    FleetConfig fleet = FleetConfig::singleCard(config);
    fleet.cardPlans = {std::move(plan)};
    return makeHardenedBackend(std::move(name),
                               std::move(description),
                               std::move(fleet), policy);
}

std::unique_ptr<RealignerBackend>
makeHardenedBackend(std::string name, std::string description,
                    FleetConfig fleet, HardenPolicy policy)
{
    return std::make_unique<HardenedBackend>(
        std::move(name), std::move(description), std::move(fleet),
        policy);
}

std::unique_ptr<RealignerBackend>
makeHardenedBackend(const std::string &name, bool perf_counters,
                    bool perf_trace, FaultPlan plan,
                    HardenPolicy policy, uint32_t cards,
                    bool stealing)
{
    AccelRegistryEntry entry;
    fatal_if(!accelRegistryEntry(name, &entry),
             "backend '%s' is not accelerated; --harden and "
             "--fault-plan need a simulated device",
             name.c_str());
    fatal_if(cards == 0, "a fleet needs >= 1 card");
    entry.cfg.perfCounters = perf_counters;
    entry.cfg.perfTrace = perf_trace;
    FleetConfig fleet = FleetConfig::singleCard(entry.cfg);
    fleet.cards = cards;
    fleet.stealing = stealing;
    fleet.cardPlans = {std::move(plan)};
    return makeHardenedBackend(
        name, std::string(entry.desc) + " (hardened)",
        std::move(fleet), policy);
}

std::unique_ptr<RealignerBackend>
makeBackend(const std::string &name, bool perf_counters,
            bool perf_trace, uint32_t cards, bool stealing)
{
    SoftwareRealignerConfig sw;
    fatal_if(cards == 0, "a fleet needs >= 1 card");
    const bool software_name =
        name == "gatk3" || name == "gatk3-1t" || name == "adam" ||
        name == "native";
    fatal_if(software_name && cards > 1,
             "backend '%s' is software; --cards needs a simulated "
             "device fleet",
             name.c_str());

    // Accelerated configurations pick up the observability flags;
    // applied below via this helper.
    auto accel = [&](AccelConfig cfg) {
        cfg.perfCounters = perf_counters;
        cfg.perfTrace = perf_trace;
        return cfg;
    };

    if (name == "gatk3") {
        sw.prune = false;
        sw.threads = 8;
        sw.workAmplification = kJvmWorkAmplification;
        return makeSoftwareBackend(
            name, "GATK3-style software IR, 8 threads", sw);
    }
    if (name == "gatk3-1t") {
        sw.prune = false;
        sw.threads = 1;
        sw.workAmplification = kJvmWorkAmplification;
        return makeSoftwareBackend(
            name, "GATK3-style software IR, 1 thread", sw);
    }
    if (name == "adam") {
        sw.prune = true;
        sw.threads = 8;
        sw.workAmplification = kJvmWorkAmplification;
        return makeSoftwareBackend(
            name, "ADAM-style optimized software IR, 8 threads", sw);
    }
    if (name == "native") {
        sw.prune = true;
        sw.threads = 8;
        sw.workAmplification = 1;
        return makeSoftwareBackend(
            name, "tuned native software IR, 8 threads", sw);
    }
    AccelRegistryEntry entry;
    if (accelRegistryEntry(name, &entry)) {
        FleetConfig fleet =
            FleetConfig::singleCard(accel(entry.cfg));
        fleet.cards = cards;
        fleet.stealing = stealing;
        return makeAcceleratedBackend(name, entry.desc,
                                      std::move(fleet),
                                      entry.policy);
    }
    fatal("unknown realigner backend '%s'", name.c_str());
}

std::vector<std::string>
backendNames()
{
    return {"gatk3",       "gatk3-1t",          "adam",
            "native",      "iracc",             "iracc-taskp",
            "iracc-taskp-async", "hls"};
}

std::vector<BackendVariant>
differentialVariants(const std::vector<uint32_t> &job_threads)
{
    std::vector<BackendVariant> out;
    for (bool accelerated : {false, true}) {
        for (bool prune : {false, true}) {
            for (uint32_t threads : job_threads) {
                BackendVariant v;
                v.accelerated = accelerated;
                v.prune = prune;
                v.jobThreads = threads;
                v.label =
                    std::string(accelerated ? "accelerated"
                                            : "software") +
                    "/prune=" + (prune ? "on" : "off") +
                    "/jobs=" + std::to_string(threads);
                out.push_back(std::move(v));
            }
        }
    }
    // Dispatch design points: every supported WHD kernel must be
    // indistinguishable from the oracle.  Pinned explicitly (the
    // base matrix runs whatever dispatch resolves ambiently, which
    // CI steers via IRACC_KERNEL).
    for (WhdKernel kernel : supportedWhdKernels()) {
        for (bool prune : {false, true}) {
            BackendVariant v;
            v.accelerated = false;
            v.prune = prune;
            v.jobThreads = 1;
            v.kernel = whdKernelName(kernel);
            v.label = std::string("software/prune=") +
                      (prune ? "on" : "off") +
                      "/jobs=1/kernel=" + v.kernel;
            out.push_back(std::move(v));
        }
    }
    // Fleet design points: card placement (and work stealing) must
    // be output-invisible -- only the modeled timing may change.
    for (uint32_t cards : {2u, 4u}) {
        for (bool stealing : {true, false}) {
            BackendVariant v;
            v.accelerated = true;
            v.prune = true;
            v.jobThreads = 1;
            v.cards = cards;
            v.stealing = stealing;
            v.label = "accelerated/prune=on/jobs=1/cards=" +
                      std::to_string(cards) +
                      "/steal=" + (stealing ? "on" : "off");
            out.push_back(std::move(v));
        }
    }
    return out;
}

std::unique_ptr<RealignerBackend>
makeVariantBackend(const BackendVariant &variant)
{
    if (!variant.accelerated) {
        SoftwareRealignerConfig cfg;
        cfg.prune = variant.prune;
        cfg.threads = 2;
        cfg.workAmplification = 1.0;
        return makeSoftwareBackend(
            variant.label, "differential software design point",
            cfg);
    }
    AccelConfig cfg = AccelConfig::paperOptimized();
    cfg.pruning = variant.prune;
    FleetConfig fleet = FleetConfig::singleCard(cfg);
    fleet.cards = variant.cards == 0 ? 1 : variant.cards;
    fleet.stealing = variant.stealing;
    if (variant.hardened) {
        return makeHardenedBackend(
            variant.label,
            "differential hardened accelerated design point",
            std::move(fleet));
    }
    return makeAcceleratedBackend(
        variant.label, "differential accelerated design point",
        std::move(fleet), SchedulePolicy::AsynchronousParallel);
}

} // namespace iracc
