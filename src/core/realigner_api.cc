#include "core/realigner_api.hh"

#include <algorithm>

#include "host/accelerated_system.hh"
#include "realign/whd_simd.hh"
#include "util/logging.hh"

namespace iracc {

namespace {

/** Software baseline backend: software Execute stage. */
class SoftwareBackend : public RealignerBackend
{
  public:
    SoftwareBackend(std::string name, std::string desc,
                    SoftwareRealignerConfig cfg)
        : backendName(std::move(name)), desc(std::move(desc)),
          cfg(std::move(cfg))
    {
    }

    std::string name() const override { return backendName; }
    std::string description() const override { return desc; }

    TargetCreationParams
    targetParams() const override
    {
        return cfg.targetParams;
    }

    uint32_t hostThreads() const override { return cfg.threads; }

    std::unique_ptr<ExecuteStage>
    makeExecuteStage(uint32_t concurrent_contigs) const override
    {
        // Contig-parallel jobs split the backend's target-level
        // workers across contigs instead of oversubscribing.
        SoftwareRealignerConfig stage_cfg = cfg;
        if (concurrent_contigs > 1) {
            stage_cfg.threads = std::max(
                1u, cfg.threads / concurrent_contigs);
        }
        return std::make_unique<SoftwareExecuteStage>(stage_cfg);
    }

  private:
    std::string backendName;
    std::string desc;
    SoftwareRealignerConfig cfg;
};

/** Simulated-FPGA backend: accelerated Execute stage. */
class AcceleratedBackend : public RealignerBackend
{
  public:
    AcceleratedBackend(std::string name, std::string desc,
                       AccelConfig cfg, SchedulePolicy policy)
        : backendName(std::move(name)), desc(std::move(desc)),
          system(cfg, policy)
    {
    }

    std::string name() const override { return backendName; }
    std::string description() const override { return desc; }

    std::unique_ptr<ExecuteStage>
    makeExecuteStage(uint32_t) const override
    {
        // executeTargets() instantiates a fresh FpgaSystem per
        // call, so each contig gets its own simulated card.
        return std::make_unique<AcceleratedExecuteStage>(system);
    }

  private:
    std::string backendName;
    std::string desc;
    AcceleratedIrSystem system;
};

/** Hardened simulated-FPGA backend: self-healing Execute stage. */
class HardenedBackend : public RealignerBackend
{
  public:
    HardenedBackend(std::string name, std::string desc,
                    AccelConfig cfg, FaultPlan plan,
                    HardenPolicy policy)
        : backendName(std::move(name)), desc(std::move(desc)),
          cfg(cfg), plan(std::move(plan)), policy(policy)
    {
    }

    std::string name() const override { return backendName; }
    std::string description() const override { return desc; }

    std::unique_ptr<ExecuteStage>
    makeExecuteStage(uint32_t) const override
    {
        // Each stage (= contig) gets its own FpgaSystem and its
        // own FaultInjector instance, so the plan's occurrence
        // counters restart per contig and contig-parallel runs
        // stay deterministic.
        return std::make_unique<HardenedExecuteStage>(cfg, plan,
                                                      policy);
    }

  private:
    std::string backendName;
    std::string desc;
    AccelConfig cfg;
    FaultPlan plan;
    HardenPolicy policy;
};

/** Registry configuration of one accelerated backend name. */
struct AccelRegistryEntry
{
    const char *desc;
    AccelConfig cfg;
    SchedulePolicy policy;
};

bool
accelRegistryEntry(const std::string &name, AccelRegistryEntry *out)
{
    if (name == "iracc") {
        *out = {"32 IR units, 32-wide data parallel, pruning, async",
                AccelConfig::paperOptimized(),
                SchedulePolicy::AsynchronousParallel};
        return true;
    }
    if (name == "iracc-taskp") {
        *out = {"32 scalar IR units, synchronous batches",
                AccelConfig::taskParallelOnly(),
                SchedulePolicy::SynchronousParallel};
        return true;
    }
    if (name == "iracc-taskp-async") {
        *out = {"32 scalar IR units, async scheduling",
                AccelConfig::taskParallelOnly(),
                SchedulePolicy::AsynchronousParallel};
        return true;
    }
    if (name == "hls") {
        *out = {"SDAccel/HLS build: 16 scalar units, no pruning",
                AccelConfig::hlsSdaccel(),
                SchedulePolicy::AsynchronousParallel};
        return true;
    }
    return false;
}

} // anonymous namespace

BackendRunResult
RealignerBackend::realignContig(const ReferenceGenome &ref,
                                int32_t contig,
                                std::vector<Read> &reads) const
{
    auto exec = makeExecuteStage(1);
    return runContigPipeline(ref, contig, reads, targetParams(),
                             *exec, hostThreads());
}

std::unique_ptr<RealignerBackend>
makeSoftwareBackend(std::string name, std::string description,
                    SoftwareRealignerConfig config)
{
    fatal_if(config.threads == 0, "realigner needs >= 1 thread");
    fatal_if(config.workAmplification < 1.0,
             "work amplification must be >= 1.0");
    return std::make_unique<SoftwareBackend>(
        std::move(name), std::move(description), std::move(config));
}

std::unique_ptr<RealignerBackend>
makeAcceleratedBackend(std::string name, std::string description,
                       AccelConfig config, SchedulePolicy policy)
{
    return std::make_unique<AcceleratedBackend>(
        std::move(name), std::move(description), config, policy);
}

std::unique_ptr<RealignerBackend>
makeHardenedBackend(std::string name, std::string description,
                    AccelConfig config, FaultPlan plan,
                    HardenPolicy policy)
{
    return std::make_unique<HardenedBackend>(
        std::move(name), std::move(description), config,
        std::move(plan), policy);
}

std::unique_ptr<RealignerBackend>
makeHardenedBackend(const std::string &name, bool perf_counters,
                    bool perf_trace, FaultPlan plan,
                    HardenPolicy policy)
{
    AccelRegistryEntry entry;
    fatal_if(!accelRegistryEntry(name, &entry),
             "backend '%s' is not accelerated; --harden and "
             "--fault-plan need a simulated device",
             name.c_str());
    entry.cfg.perfCounters = perf_counters;
    entry.cfg.perfTrace = perf_trace;
    return makeHardenedBackend(
        name, std::string(entry.desc) + " (hardened)", entry.cfg,
        std::move(plan), policy);
}

std::unique_ptr<RealignerBackend>
makeBackend(const std::string &name, bool perf_counters,
            bool perf_trace)
{
    SoftwareRealignerConfig sw;

    // Accelerated configurations pick up the observability flags;
    // applied below via this helper.
    auto accel = [&](AccelConfig cfg) {
        cfg.perfCounters = perf_counters;
        cfg.perfTrace = perf_trace;
        return cfg;
    };

    if (name == "gatk3") {
        sw.prune = false;
        sw.threads = 8;
        sw.workAmplification = kJvmWorkAmplification;
        return makeSoftwareBackend(
            name, "GATK3-style software IR, 8 threads", sw);
    }
    if (name == "gatk3-1t") {
        sw.prune = false;
        sw.threads = 1;
        sw.workAmplification = kJvmWorkAmplification;
        return makeSoftwareBackend(
            name, "GATK3-style software IR, 1 thread", sw);
    }
    if (name == "adam") {
        sw.prune = true;
        sw.threads = 8;
        sw.workAmplification = kJvmWorkAmplification;
        return makeSoftwareBackend(
            name, "ADAM-style optimized software IR, 8 threads", sw);
    }
    if (name == "native") {
        sw.prune = true;
        sw.threads = 8;
        sw.workAmplification = 1;
        return makeSoftwareBackend(
            name, "tuned native software IR, 8 threads", sw);
    }
    AccelRegistryEntry entry;
    if (accelRegistryEntry(name, &entry)) {
        return makeAcceleratedBackend(name, entry.desc,
                                      accel(entry.cfg),
                                      entry.policy);
    }
    fatal("unknown realigner backend '%s'", name.c_str());
}

std::vector<std::string>
backendNames()
{
    return {"gatk3",       "gatk3-1t",          "adam",
            "native",      "iracc",             "iracc-taskp",
            "iracc-taskp-async", "hls"};
}

std::vector<BackendVariant>
differentialVariants(const std::vector<uint32_t> &job_threads)
{
    std::vector<BackendVariant> out;
    for (bool accelerated : {false, true}) {
        for (bool prune : {false, true}) {
            for (uint32_t threads : job_threads) {
                BackendVariant v;
                v.accelerated = accelerated;
                v.prune = prune;
                v.jobThreads = threads;
                v.label =
                    std::string(accelerated ? "accelerated"
                                            : "software") +
                    "/prune=" + (prune ? "on" : "off") +
                    "/jobs=" + std::to_string(threads);
                out.push_back(std::move(v));
            }
        }
    }
    // Dispatch design points: every supported WHD kernel must be
    // indistinguishable from the oracle.  Pinned explicitly (the
    // base matrix runs whatever dispatch resolves ambiently, which
    // CI steers via IRACC_KERNEL).
    for (WhdKernel kernel : supportedWhdKernels()) {
        for (bool prune : {false, true}) {
            BackendVariant v;
            v.accelerated = false;
            v.prune = prune;
            v.jobThreads = 1;
            v.kernel = whdKernelName(kernel);
            v.label = std::string("software/prune=") +
                      (prune ? "on" : "off") +
                      "/jobs=1/kernel=" + v.kernel;
            out.push_back(std::move(v));
        }
    }
    return out;
}

std::unique_ptr<RealignerBackend>
makeVariantBackend(const BackendVariant &variant)
{
    if (!variant.accelerated) {
        SoftwareRealignerConfig cfg;
        cfg.prune = variant.prune;
        cfg.threads = 2;
        cfg.workAmplification = 1.0;
        return makeSoftwareBackend(
            variant.label, "differential software design point",
            cfg);
    }
    AccelConfig cfg = AccelConfig::paperOptimized();
    cfg.pruning = variant.prune;
    if (variant.hardened) {
        return makeHardenedBackend(
            variant.label,
            "differential hardened accelerated design point", cfg);
    }
    return makeAcceleratedBackend(
        variant.label, "differential accelerated design point", cfg,
        SchedulePolicy::AsynchronousParallel);
}

} // namespace iracc
