/**
 * @file
 * The genome-level realignment job engine.
 *
 * The paper's end-to-end claim (Section V-A, Figure 9: 42 h ->
 * 31 min) is about a whole genome, not a contig.  A RealignSession
 * takes the complete read set, partitions it by contig once, and
 * drives every contig through the staged pipeline
 * (Plan -> Prepare -> Execute -> Apply) concurrently on a worker
 * pool -- accelerated backends draw per-contig card leases from
 * their shared CardFleet (accel/card_fleet.hh), deterministic
 * per-contig RNG streams, statistics and performance counters
 * merged in contig order at the barrier.  Results are
 * bit-identical for any thread count, card count, and stealing
 * setting (asserted by tests/realign_job_test.cc).
 *
 * RealignerBackend::realignContig is a thin shim over a
 * one-contig job, so existing per-contig callers keep working.
 */

#ifndef IRACC_CORE_REALIGN_JOB_HH
#define IRACC_CORE_REALIGN_JOB_HH

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "core/realigner_api.hh"
#include "core/stage_pipeline.hh"
#include "genomics/stream_io.hh"

namespace iracc {

namespace obs {
struct Observability;
}

/**
 * One contig's completion notice, delivered through
 * RealignJobConfig::onProgress while a job runs.  Coordinates
 * match the flight recorder's (contig id, card-busy virtual time,
 * per-job completion sequence), so a consumer can correlate the
 * stream with a post-mortem event log.
 */
struct RealignJobProgress
{
    int32_t contig = 0;

    /** Contigs finished so far, including this one. */
    uint64_t contigsDone = 0;

    /** Contigs the job will run in total. */
    uint64_t contigsTotal = 0;

    /** The contig's health (Ok unless recovery fired). */
    RunStatus status = RunStatus::Ok;

    /** Targets realigned on this contig. */
    uint64_t targets = 0;

    /** Virtual (cycle-domain) completion time of the contig; 0 for
     *  software backends and for skipped contigs. */
    uint64_t vtime = 0;

    /** True when the contig was skipped by a cancellation request
     *  instead of being realigned. */
    bool skipped = false;
};

/** Configuration of a genome-level realignment job. */
struct RealignJobConfig
{
    /**
     * Contig-level worker threads.  Each worker owns one contig at
     * a time with its own Execute stage (its own card lease off
     * the shared fleet for accelerated backends); 1 = serial
     * contig loop.  The
     * effective worker count is capped at the contig count and at
     * the host's hardware concurrency (extra workers only thrash
     * caches); results are bit-identical for any value.
     */
    uint32_t threads = 1;

    /**
     * Base seed of the job's deterministic RNG streams.  Every
     * contig derives its stream from (seed, contig), so results
     * are identical for any `threads` value.
     */
    uint64_t seed = kRealignStreamSeed;

    /**
     * Optional host observability (null = uninstrumented): one
     * "contig N" span per contig with a
     * `realign.job.contig_seconds` histogram, a "job barrier"
     * span with `realign.job.barrier_wait_seconds`, a
     * `realign.job.contigs` counter, worker-pool gauges under
     * `realign.pool.*`, and per-stage instrumentation threaded
     * into runContigPipeline.  Results stay bit-identical;
     * observability only reads timings and counts.
     */
    obs::Observability *obs = nullptr;

    /**
     * Post-mortem bundle directory (core/postmortem.hh).  When
     * non-empty, a job that finishes Degraded or Failed writes a
     * bundle there; empty (default) disables the writer.  The
     * flight recorder itself is always on either way.
     */
    std::string postmortemDir;

    /** Write the bundle even when the job finishes Ok (the CLI's
     *  --postmortem switch). */
    bool postmortemAlways = false;

    /**
     * Cooperative cancellation token.  When non-null, every worker
     * checks it before starting a contig; once it reads true, not-
     * yet-started contigs are *skipped* -- their reads stay
     * unrealigned, exactly the Failed-contig semantic -- while
     * contigs already executing run to completion (the pipeline is
     * never torn down mid-contig, so partial output cannot leak).
     * A job with skipped contigs reports cancelled = true and
     * status Failed, and releases its fleet leases and worker
     * threads normally.
     */
    const std::atomic<bool> *cancel = nullptr;

    /**
     * Per-contig progress stream.  When set, invoked once per
     * contig right after the contig completes (or is skipped by a
     * cancellation), from the worker thread that ran it; the
     * callback must be thread-safe.  Keep it cheap -- it runs
     * between contigs on the job's critical path.
     */
    std::function<void(const RealignJobProgress &)> onProgress;
};

/** One contig's slice of a job result. */
struct ContigJobResult
{
    int32_t contig = 0;
    BackendRunResult run;
};

/** Aggregate result of a genome-level realignment job. */
struct RealignJobResult
{
    /** Per-contig results, ascending contig order. */
    std::vector<ContigJobResult> contigs;

    /** Statistics merged over all contigs (contig order). */
    RealignStats stats;

    /**
     * Modeled end-to-end seconds: sum of the per-contig
     * BackendRunResult::seconds, i.e. what a serial one-card
     * deployment would report (the paper's Figure 9 metric).
     */
    double seconds = 0.0;

    /** Measured host wall-clock of the whole job. */
    double wallSeconds = 0.0;

    /**
     * Slowest single contig's modeled seconds: the lower bound of
     * a fleet deployment with one card per contig (the Section VI
     * fleet-sizing view).
     */
    double criticalPathSeconds = 0.0;

    /** Accelerated backends: summed simulated-FPGA seconds. */
    double fpgaSeconds = 0.0;

    /** True when the backend ran on the cycle-level simulator. */
    bool simulated = false;

    /**
     * Performance counters merged over all contigs at the job
     * barrier, each contig's trace under its contig id as the
     * Chrome trace pid.  On a multi-card fleet the pid is
     * contig * cards + card, one Chrome process per (contig,
     * card) (see docs/OBSERVABILITY.md).
     */
    PerfReport perf;

    /**
     * Fleet dispatch accounting merged over all contigs (rows
     * matched by card id; empty for software backends).
     */
    FleetExecStats fleet;

    /**
     * Recovery counters merged over all contigs, and the worst
     * per-contig health.  A Degraded job produced fully correct
     * output through retries/fallbacks; a Failed job left the
     * reads of `failedContigs` (partially) unrealigned rather than
     * aborting (see docs/ROBUSTNESS.md).
     */
    RecoveryStats recovery;
    RunStatus status = RunStatus::Ok;
    std::vector<int32_t> degradedContigs;
    std::vector<int32_t> failedContigs;

    /**
     * True when a cancellation request skipped at least one
     * contig.  Skipped contigs are listed in `skippedContigs` (a
     * subset of `failedContigs`: their reads were left unrealigned)
     * and the job's status is Failed.
     */
    bool cancelled = false;
    std::vector<int32_t> skippedContigs;

    /**
     * Per-target latency percentiles merged exactly over all
     * contigs (accelerated backends; empty for software).  Cycle
     * domain plus modeled nanoseconds -- see
     * docs/OBSERVABILITY.md "Latency percentiles".
     */
    obs::LatencyHistogram targetLatencyCycles;
    obs::LatencyHistogram targetLatencyNanos;

    /** Path of the post-mortem bundle this run wrote ("" = none). */
    std::string postmortemPath;
};

/**
 * Result of a streaming realignment run: the aggregate job result
 * plus the ingest outcome.  A parse error does not abort the
 * process -- groups realigned before the error are merged into
 * `job` and already delivered to the sink; the caller decides what
 * to do with the partial output (the CLI and server both fail the
 * job and discard it).
 */
struct StreamRealignResult
{
    RealignJobResult job;

    /** False when ingest stopped on malformed input. */
    bool parseOk = true;

    /** The rejection, valid when !parseOk. */
    ParseError parseError;

    /** Contig batches consumed from the source. */
    uint64_t batches = 0;

    /** Reads realigned and delivered to the sink. */
    uint64_t readsStreamed = 0;
};

/**
 * A reusable genome-level realignment session binding one backend
 * to a job configuration.  Thread-compatible: run() may be called
 * repeatedly; each call is internally parallel.
 */
class RealignSession
{
  public:
    RealignSession(std::unique_ptr<const RealignerBackend> backend,
                   RealignJobConfig config = {});

    const RealignerBackend &backend() const { return *be; }
    const RealignJobConfig &config() const { return cfg; }

    /**
     * Realign every contig that has reads, mutating @p reads in
     * place.  Contigs run concurrently on config().threads
     * workers; reads of different contigs are disjoint, so
     * workers never touch the same element.
     */
    RealignJobResult run(const ReferenceGenome &ref,
                         std::vector<Read> &reads) const;

    /** Realign an explicit contig set (ascending processing order). */
    RealignJobResult run(const ReferenceGenome &ref,
                         const std::vector<int32_t> &contigs,
                         std::vector<Read> &reads) const;

    /**
     * Per-call configuration overloads: run one job with @p job_cfg
     * instead of the session-bound config, sharing the session's
     * backend (and hence its CardFleet).  This is what makes the
     * session a scheduler substrate -- the server runs many
     * tenants' jobs, each with its own thread count, seed,
     * cancellation token, and progress sink, through one session
     * (src/server/job_scheduler.hh).
     */
    RealignJobResult run(const ReferenceGenome &ref,
                         std::vector<Read> &reads,
                         const RealignJobConfig &job_cfg) const;

    RealignJobResult run(const ReferenceGenome &ref,
                         const std::vector<int32_t> &contigs,
                         std::vector<Read> &reads,
                         const RealignJobConfig &job_cfg) const;

    /** One-contig convenience (what the realignContig shim uses). */
    RealignJobResult runContig(const ReferenceGenome &ref,
                               int32_t contig,
                               std::vector<Read> &reads) const;

    /**
     * Bounded-memory streaming run: pull contig batches from
     * @p source, realign up to job_cfg.threads contigs' worth at a
     * time (one group), and hand each group's realigned reads --
     * in input order -- to @p sink before pulling the next.  Peak
     * resident memory is therefore bounded by `threads` times the
     * largest contig batch, independent of genome size, which is
     * the property the CI streaming-ingest job asserts.
     *
     * Bit-equality contract (asserted by tests/stream_io_test.cc
     * and docs/TESTING.md): for contig-grouped input, concatenating
     * the sink payloads reproduces the in-memory run's realigned
     * read sequence byte for byte, and the merged RealignStats are
     * identical -- per-contig results depend only on (seed, contig)
     * and the stats reduction is purely additive, so the grouping
     * is unobservable in the output.
     *
     * Differences from run(): progress callbacks report
     * contigsTotal as the count of contigs *seen so far* (a lower
     * bound -- the stream's length is unknown); a post-mortem
     * bundle may be written per group, with the last path kept.
     * Cancellation stops the stream after the current group.  On a
     * parse error the partially collected group is discarded
     * unrealigned and the result carries parseOk = false.
     */
    StreamRealignResult runStreamed(
        const ReferenceGenome &ref, ReadBatchSource &source,
        const std::function<void(std::vector<Read> &reads)> &sink,
        const RealignJobConfig &job_cfg) const;

    /** Streaming run with the session-bound configuration. */
    StreamRealignResult runStreamed(
        const ReferenceGenome &ref, ReadBatchSource &source,
        const std::function<void(std::vector<Read> &reads)> &sink)
        const;

  private:
    std::unique_ptr<const RealignerBackend> be;
    RealignJobConfig cfg;
};

/** Build a session over a registry backend (see makeBackend). */
RealignSession makeSession(const std::string &backend_name,
                           RealignJobConfig config = {},
                           bool perf_counters = false,
                           bool perf_trace = false);

} // namespace iracc

#endif // IRACC_CORE_REALIGN_JOB_HH
