#include "core/workload.hh"

#include "util/logging.hh"

namespace iracc {

const ChromosomeWorkload &
GenomeWorkload::chromosome(int n) const
{
    for (const auto &c : chromosomes)
        if (c.number == n)
            return c;
    panic("chromosome %d not in workload", n);
}

int64_t
GenomeWorkload::totalReads() const
{
    int64_t total = 0;
    for (const auto &c : chromosomes)
        total += static_cast<int64_t>(c.reads.size());
    return total;
}

GenomeWorkload
buildWorkload(const WorkloadParams &params)
{
    GenomeWorkload wl;
    Rng rng(params.seed);

    std::vector<int> numbers = params.chromosomes;
    if (numbers.empty()) {
        for (int n = 1; n <= kNumAutosomes; ++n)
            numbers.push_back(n);
    }

    auto karyotype = scaledKaryotype(params.scaleDivisor,
                                     params.minContigLength);

    for (int n : numbers) {
        fatal_if(n < 1 || n > kNumAutosomes,
                 "chromosome %d out of range", n);
        const ScaledContig &sc = karyotype[static_cast<size_t>(n - 1)];

        // Per-chromosome RNG forked deterministically so adding or
        // dropping chromosomes never perturbs the others.
        Rng chr_rng(params.seed ^ (0x9E3779B97F4A7C15ull *
                                   static_cast<uint64_t>(n)));

        BaseSeq seq = ReferenceGenome::randomSequence(sc.length,
                                                      chr_rng);
        int32_t contig = wl.reference.addContig(sc.name,
                                                std::move(seq));

        ChromosomeWorkload cw;
        cw.number = n;
        cw.contig = contig;
        cw.truth = generateVariants(wl.reference.contig(contig).seq,
                                    contig, params.variants, chr_rng);

        ReadSimParams sim = params.readSim;
        sim.coverage = params.coverage;
        ReadSimulator simulator(sim, chr_rng.next());
        SimulatedReads sr = simulator.simulateContig(wl.reference,
                                                     contig,
                                                     cw.truth);
        cw.reads = std::move(sr.reads);
        cw.misalignedIndelReads = sr.misalignedIndelReads;
        cw.indelSpanningReads = sr.indelSpanningReads;

        if (params.normalCoverage > 0.0) {
            // The matched normal carries the germline variants
            // only -- somatic events are tumor-private.
            std::vector<Variant> germline;
            for (const Variant &v : cw.truth)
                if (!v.isSomatic)
                    germline.push_back(v);
            ReadSimParams nsim = params.readSim;
            nsim.coverage = params.normalCoverage;
            ReadSimulator nsimulator(nsim, chr_rng.next());
            SimulatedReads nr = nsimulator.simulateContig(
                wl.reference, contig, germline);
            for (Read &r : nr.reads)
                r.name = "N" + r.name;
            cw.normalReads = std::move(nr.reads);
        }
        wl.chromosomes.push_back(std::move(cw));
    }
    return wl;
}

} // namespace iracc
