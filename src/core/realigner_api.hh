/**
 * @file
 * The public realignment API: a uniform backend interface over the
 * software baselines and the simulated accelerated system, plus a
 * string-keyed registry mirroring the systems compared in the
 * paper's evaluation:
 *
 *   "gatk3"            GATK3-style software, 8 threads, no pruning,
 *                      JVM work model (the paper's main baseline)
 *   "gatk3-1t"         same, single-threaded
 *   "adam"             optimized software baseline (ADAM stand-in):
 *                      pruning enabled, 8 threads, JVM work model
 *   "native"           tuned native software: pruning, 8 threads
 *   "iracc"            the full accelerated system: 32 units,
 *                      32-wide data parallel, pruning, async
 *                      scheduling (paper "IR ACC")
 *   "iracc-taskp"      32 scalar units, synchronous batches
 *                      (paper "IRAcc-TaskP")
 *   "iracc-taskp-async" 32 scalar units, async scheduling
 *                      (paper "IRAcc-TaskP-Async")
 *   "hls"              the SDAccel/HLS build: 16 units, scalar, no
 *                      pruning (paper Section V-B)
 */

#ifndef IRACC_CORE_REALIGNER_API_HH
#define IRACC_CORE_REALIGNER_API_HH

#include <memory>
#include <string>
#include <vector>

#include "genomics/read.hh"
#include "genomics/reference.hh"
#include "realign/realigner.hh"
#include "sim/perf_monitor.hh"

namespace iracc {

/** Result of one backend run over a contig. */
struct BackendRunResult
{
    RealignStats stats;

    /**
     * End-to-end runtime in seconds.  For software backends this
     * is measured host wall-clock; for accelerated backends it is
     * the simulated FPGA time (cycles / clock) plus measured host
     * pre/post-processing, matching the paper's end-to-end
     * measurement (Section V-A).
     */
    double seconds = 0.0;

    /** True when `seconds` came from the cycle-level simulator. */
    bool simulated = false;

    /** Accelerated backends: simulated-FPGA seconds only. */
    double fpgaSeconds = 0.0;

    /** Accelerated backends: DMA share of total cycles. */
    double dmaFraction = 0.0;

    /** Accelerated backends: mean unit utilization. */
    double unitUtilization = 0.0;

    /**
     * Accelerated backends: performance-counter snapshot
     * (perf.enabled == false unless the backend was created with
     * counters on; see makeBackend and docs/OBSERVABILITY.md).
     */
    PerfReport perf;
};

/** Uniform realignment backend. */
class RealignerBackend
{
  public:
    virtual ~RealignerBackend() = default;

    /** Short registry name, e.g. "gatk3". */
    virtual std::string name() const = 0;

    /** Human-readable description for reports. */
    virtual std::string description() const = 0;

    /** Realign one contig's reads in place. */
    virtual BackendRunResult realignContig(
        const ReferenceGenome &ref, int32_t contig,
        std::vector<Read> &reads) const = 0;
};

/**
 * Create a backend by registry name; fatal() on unknown names.
 *
 * @param perf_counters collect simulator performance counters
 * @param perf_trace    also record timeline trace events
 *
 * Both flags are honoured by the accelerated backends only; the
 * software baselines have no simulator to instrument and ignore
 * them.
 */
std::unique_ptr<RealignerBackend> makeBackend(
    const std::string &name, bool perf_counters = false,
    bool perf_trace = false);

/** All registry names in display order. */
std::vector<std::string> backendNames();

/**
 * Work-model multiplier applied to the JVM-based baselines
 * (GATK3, ADAM) to account for interpreted-framework overhead
 * relative to this repository's native kernel.  Documented in
 * DESIGN.md as part of the software-baseline substitution.
 */
constexpr double kJvmWorkAmplification = 1.5;

} // namespace iracc

#endif // IRACC_CORE_REALIGNER_API_HH
