/**
 * @file
 * The public realignment API: a uniform backend interface over the
 * software baselines and the simulated accelerated system, plus a
 * string-keyed registry mirroring the systems compared in the
 * paper's evaluation:
 *
 *   "gatk3"            GATK3-style software, 8 threads, no pruning,
 *                      JVM work model (the paper's main baseline)
 *   "gatk3-1t"         same, single-threaded
 *   "adam"             optimized software baseline (ADAM stand-in):
 *                      pruning enabled, 8 threads, JVM work model
 *   "native"           tuned native software: pruning, 8 threads
 *   "iracc"            the full accelerated system: 32 units,
 *                      32-wide data parallel, pruning, async
 *                      scheduling (paper "IR ACC")
 *   "iracc-taskp"      32 scalar units, synchronous batches
 *                      (paper "IRAcc-TaskP")
 *   "iracc-taskp-async" 32 scalar units, async scheduling
 *                      (paper "IRAcc-TaskP-Async")
 *   "hls"              the SDAccel/HLS build: 16 units, scalar, no
 *                      pruning (paper Section V-B)
 *
 * Every backend is a bundle of stage-pipeline pieces (see
 * core/stage_pipeline.hh): all backends share Plan / Prepare /
 * Apply and differ only in the Execute stage they provide.  The
 * per-contig realignContig call is a thin shim over a one-contig
 * RealignJob (core/realign_job.hh); genome-wide callers should
 * use a RealignSession directly.
 */

#ifndef IRACC_CORE_REALIGNER_API_HH
#define IRACC_CORE_REALIGNER_API_HH

#include <memory>
#include <string>
#include <vector>

#include "core/stage_pipeline.hh"
#include "genomics/read.hh"
#include "genomics/reference.hh"
#include "host/scheduler.hh"
#include "realign/realigner.hh"
#include "sim/perf_monitor.hh"

namespace iracc {

/** Uniform realignment backend: a named Execute-stage factory. */
class RealignerBackend
{
  public:
    virtual ~RealignerBackend() = default;

    /** Short registry name, e.g. "gatk3". */
    virtual std::string name() const = 0;

    /** Human-readable description for reports. */
    virtual std::string description() const = 0;

    /** Target-creation knobs shared by all stages. */
    virtual TargetCreationParams targetParams() const { return {}; }

    /**
     * Create this backend's Execute stage for one contig.
     *
     * @param concurrent_contigs number of contigs the caller runs
     *        concurrently; backends with internal target-level
     *        threading divide their worker count by it so a
     *        parallel RealignJob does not oversubscribe the host.
     *        Results are identical either way.
     */
    virtual std::unique_ptr<ExecuteStage>
    makeExecuteStage(uint32_t concurrent_contigs = 1) const = 0;

    /** Host-side threads available for the Prepare stage. */
    virtual uint32_t hostThreads() const { return 1; }

    /**
     * Provisioned fleet shape, for accelerated backends; null for
     * software backends (no device).  Post-mortem bundles record
     * the shape and the per-card FaultPlans from it.
     */
    virtual const FleetConfig *fleetShape() const { return nullptr; }

    /**
     * Realign one contig's reads in place -- a thin shim that
     * drives a one-contig staged pipeline (Plan -> Prepare ->
     * Execute -> Apply).  Genome-wide callers should prefer
     * RealignSession (core/realign_job.hh).
     */
    BackendRunResult realignContig(const ReferenceGenome &ref,
                                   int32_t contig,
                                   std::vector<Read> &reads) const;
};

/**
 * Create a backend by registry name; fatal() on unknown names.
 *
 * @param perf_counters collect simulator performance counters
 * @param perf_trace    also record timeline trace events
 * @param cards         accelerator cards to provision (fatal() for
 *                      software backends when > 1 -- there is no
 *                      fleet to scale)
 * @param stealing      cross-card work stealing (fleet only)
 *
 * The perf flags are honoured by the accelerated backends only;
 * the software baselines have no simulator to instrument and
 * ignore them.
 */
std::unique_ptr<RealignerBackend> makeBackend(
    const std::string &name, bool perf_counters = false,
    bool perf_trace = false, uint32_t cards = 1,
    bool stealing = true);

/**
 * Create a software backend with an explicit configuration (for
 * ablations and tests that sweep non-registry design points).
 */
std::unique_ptr<RealignerBackend> makeSoftwareBackend(
    std::string name, std::string description,
    SoftwareRealignerConfig config);

/**
 * Create an accelerated backend with an explicit configuration
 * (for ablations and tests that sweep non-registry design points;
 * the AccelConfig's perfCounters/perfTrace flags are honoured).
 */
std::unique_ptr<RealignerBackend> makeAcceleratedBackend(
    std::string name, std::string description, AccelConfig config,
    SchedulePolicy policy);

/**
 * Create an accelerated backend over an explicit card fleet: the
 * backend owns one shared CardFleet and every contig's Execute
 * stage draws a lease from it.  Results are bit-identical to the
 * single-card shape for any (cards, stealing); only the modeled
 * timing and the `fleet.*` accounting change.
 */
std::unique_ptr<RealignerBackend> makeAcceleratedBackend(
    std::string name, std::string description, FleetConfig fleet,
    SchedulePolicy policy);

/**
 * Create a hardened accelerated backend with an explicit
 * configuration: the same simulated card, driven through the
 * self-healing execution path (host/hardened_executor.hh) with
 * @p plan attached to its fault hooks.  An empty plan yields
 * bit-identical results to makeAcceleratedBackend.
 */
std::unique_ptr<RealignerBackend> makeHardenedBackend(
    std::string name, std::string description, AccelConfig config,
    FaultPlan plan = {}, HardenPolicy policy = {});

/**
 * Create a hardened accelerated backend over an explicit card
 * fleet.  Per-card fault schedules ride in
 * FleetConfig::cardPlans; a wedged card's targets migrate to the
 * next usable card (see host/hardened_executor.hh).
 */
std::unique_ptr<RealignerBackend> makeHardenedBackend(
    std::string name, std::string description, FleetConfig fleet,
    HardenPolicy policy = {});

/**
 * Hardened variant of a registry backend: resolves @p name to its
 * accelerated configuration and wraps it in the hardened path.
 * fatal() on software names -- there is no device to harden.
 * @p cards / @p stealing provision a multi-card fleet; @p plan
 * attaches to card 0 (use the FleetConfig overload for per-card
 * schedules).
 */
std::unique_ptr<RealignerBackend> makeHardenedBackend(
    const std::string &name, bool perf_counters, bool perf_trace,
    FaultPlan plan = {}, HardenPolicy policy = {},
    uint32_t cards = 1, bool stealing = true);

/** All registry names in display order. */
std::vector<std::string> backendNames();

/**
 * One design point of the cross-backend differential-testing
 * matrix (src/testing, tools/iracc_diff): a backend kind plus the
 * knobs that must never change results -- every variant has to
 * produce bit-identical realigned reads, statistics, and
 * downstream variant calls on every workload.
 */
struct BackendVariant
{
    /** Stable display label, e.g. "accelerated/prune=on/jobs=4". */
    std::string label;

    /** false = software WHD kernel, true = simulated FPGA. */
    bool accelerated = false;

    /** Computation pruning on the kernel datapath. */
    bool prune = false;

    /** Contig-level RealignJob worker threads. */
    uint32_t jobThreads = 1;

    /**
     * Accelerated only: drive the simulated card through the
     * hardened execution path (fault-free -- the differential
     * matrix asserts the hardening machinery itself changes
     * nothing).
     */
    bool hardened = false;

    /**
     * WHD dispatch kernel to pin for the run ("scalar" / "generic"
     * / "avx2" -- see realign/whd_simd.hh).  Empty = leave the
     * ambient dispatch choice alone, so IRACC_KERNEL forcing from
     * CI still reaches the base matrix.
     */
    std::string kernel;

    /** Accelerated only: cards in the provisioned fleet. */
    uint32_t cards = 1;

    /** Accelerated only: cross-card work stealing. */
    bool stealing = true;
};

/**
 * Enumerate the differential matrix {software, accelerated} x
 * {prune off, on} x @p job_threads, plus -- for every dispatch
 * kernel this host supports -- a software design point pair
 * (prune off/on) pinned to that kernel, plus the fleet design
 * points cards in {2, 4} x stealing {on, off} (any card placement
 * must be output-invisible).  The first entry is the oracle: the
 * unpruned single-threaded software baseline.
 */
std::vector<BackendVariant> differentialVariants(
    const std::vector<uint32_t> &job_threads = {1, 4});

/** Instantiate the backend of one differential design point. */
std::unique_ptr<RealignerBackend> makeVariantBackend(
    const BackendVariant &variant);

} // namespace iracc

#endif // IRACC_CORE_REALIGNER_API_HH
