file(REMOVE_RECURSE
  "CMakeFiles/device_memory_test.dir/device_memory_test.cc.o"
  "CMakeFiles/device_memory_test.dir/device_memory_test.cc.o.d"
  "device_memory_test"
  "device_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
