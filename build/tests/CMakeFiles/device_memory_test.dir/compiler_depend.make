# Empty compiler generated dependencies file for device_memory_test.
# This may be replaced when dependencies are built.
