# Empty dependencies file for read_simulator_test.
# This may be replaced when dependencies are built.
