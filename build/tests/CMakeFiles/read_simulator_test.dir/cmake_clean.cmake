file(REMOVE_RECURSE
  "CMakeFiles/read_simulator_test.dir/read_simulator_test.cc.o"
  "CMakeFiles/read_simulator_test.dir/read_simulator_test.cc.o.d"
  "read_simulator_test"
  "read_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
