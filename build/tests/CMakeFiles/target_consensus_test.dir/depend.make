# Empty dependencies file for target_consensus_test.
# This may be replaced when dependencies are built.
