file(REMOVE_RECURSE
  "CMakeFiles/target_consensus_test.dir/target_consensus_test.cc.o"
  "CMakeFiles/target_consensus_test.dir/target_consensus_test.cc.o.d"
  "target_consensus_test"
  "target_consensus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/target_consensus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
