# Empty dependencies file for vcf_test.
# This may be replaced when dependencies are built.
