file(REMOVE_RECURSE
  "CMakeFiles/vcf_test.dir/vcf_test.cc.o"
  "CMakeFiles/vcf_test.dir/vcf_test.cc.o.d"
  "vcf_test"
  "vcf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
