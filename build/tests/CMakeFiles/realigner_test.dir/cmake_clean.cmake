file(REMOVE_RECURSE
  "CMakeFiles/realigner_test.dir/realigner_test.cc.o"
  "CMakeFiles/realigner_test.dir/realigner_test.cc.o.d"
  "realigner_test"
  "realigner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realigner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
