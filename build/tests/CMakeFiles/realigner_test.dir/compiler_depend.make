# Empty compiler generated dependencies file for realigner_test.
# This may be replaced when dependencies are built.
