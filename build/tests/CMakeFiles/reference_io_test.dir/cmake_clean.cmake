file(REMOVE_RECURSE
  "CMakeFiles/reference_io_test.dir/reference_io_test.cc.o"
  "CMakeFiles/reference_io_test.dir/reference_io_test.cc.o.d"
  "reference_io_test"
  "reference_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
