# Empty dependencies file for reference_io_test.
# This may be replaced when dependencies are built.
