file(REMOVE_RECURSE
  "CMakeFiles/accel_system_test.dir/accel_system_test.cc.o"
  "CMakeFiles/accel_system_test.dir/accel_system_test.cc.o.d"
  "accel_system_test"
  "accel_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
