# Empty compiler generated dependencies file for accel_system_test.
# This may be replaced when dependencies are built.
