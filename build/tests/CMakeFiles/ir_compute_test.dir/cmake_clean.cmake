file(REMOVE_RECURSE
  "CMakeFiles/ir_compute_test.dir/ir_compute_test.cc.o"
  "CMakeFiles/ir_compute_test.dir/ir_compute_test.cc.o.d"
  "ir_compute_test"
  "ir_compute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_compute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
