# Empty compiler generated dependencies file for ir_compute_test.
# This may be replaced when dependencies are built.
