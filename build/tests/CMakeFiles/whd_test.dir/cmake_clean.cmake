file(REMOVE_RECURSE
  "CMakeFiles/whd_test.dir/whd_test.cc.o"
  "CMakeFiles/whd_test.dir/whd_test.cc.o.d"
  "whd_test"
  "whd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
