# Empty compiler generated dependencies file for whd_test.
# This may be replaced when dependencies are built.
