# Empty dependencies file for paired_end_test.
# This may be replaced when dependencies are built.
