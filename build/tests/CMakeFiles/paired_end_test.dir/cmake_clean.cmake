file(REMOVE_RECURSE
  "CMakeFiles/paired_end_test.dir/paired_end_test.cc.o"
  "CMakeFiles/paired_end_test.dir/paired_end_test.cc.o.d"
  "paired_end_test"
  "paired_end_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paired_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
