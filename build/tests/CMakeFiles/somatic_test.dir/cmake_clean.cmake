file(REMOVE_RECURSE
  "CMakeFiles/somatic_test.dir/somatic_test.cc.o"
  "CMakeFiles/somatic_test.dir/somatic_test.cc.o.d"
  "somatic_test"
  "somatic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somatic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
