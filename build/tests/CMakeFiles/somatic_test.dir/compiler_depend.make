# Empty compiler generated dependencies file for somatic_test.
# This may be replaced when dependencies are built.
