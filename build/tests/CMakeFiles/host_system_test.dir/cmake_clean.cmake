file(REMOVE_RECURSE
  "CMakeFiles/host_system_test.dir/host_system_test.cc.o"
  "CMakeFiles/host_system_test.dir/host_system_test.cc.o.d"
  "host_system_test"
  "host_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
