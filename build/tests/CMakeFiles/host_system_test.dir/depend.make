# Empty dependencies file for host_system_test.
# This may be replaced when dependencies are built.
