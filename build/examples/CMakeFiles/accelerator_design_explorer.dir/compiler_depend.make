# Empty compiler generated dependencies file for accelerator_design_explorer.
# This may be replaced when dependencies are built.
