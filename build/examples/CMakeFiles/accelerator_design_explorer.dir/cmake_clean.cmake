file(REMOVE_RECURSE
  "CMakeFiles/accelerator_design_explorer.dir/accelerator_design_explorer.cpp.o"
  "CMakeFiles/accelerator_design_explorer.dir/accelerator_design_explorer.cpp.o.d"
  "accelerator_design_explorer"
  "accelerator_design_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_design_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
