file(REMOVE_RECURSE
  "CMakeFiles/cloud_deployment_planner.dir/cloud_deployment_planner.cpp.o"
  "CMakeFiles/cloud_deployment_planner.dir/cloud_deployment_planner.cpp.o.d"
  "cloud_deployment_planner"
  "cloud_deployment_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_deployment_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
