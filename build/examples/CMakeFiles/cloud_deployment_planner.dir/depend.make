# Empty dependencies file for cloud_deployment_planner.
# This may be replaced when dependencies are built.
