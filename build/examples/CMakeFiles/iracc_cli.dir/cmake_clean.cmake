file(REMOVE_RECURSE
  "CMakeFiles/iracc_cli.dir/iracc_cli.cpp.o"
  "CMakeFiles/iracc_cli.dir/iracc_cli.cpp.o.d"
  "iracc_cli"
  "iracc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iracc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
