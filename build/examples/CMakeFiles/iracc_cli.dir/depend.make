# Empty dependencies file for iracc_cli.
# This may be replaced when dependencies are built.
