# Empty compiler generated dependencies file for sam_roundtrip.
# This may be replaced when dependencies are built.
