file(REMOVE_RECURSE
  "CMakeFiles/sam_roundtrip.dir/sam_roundtrip.cpp.o"
  "CMakeFiles/sam_roundtrip.dir/sam_roundtrip.cpp.o.d"
  "sam_roundtrip"
  "sam_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sam_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
