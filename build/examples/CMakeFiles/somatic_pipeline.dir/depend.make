# Empty dependencies file for somatic_pipeline.
# This may be replaced when dependencies are built.
