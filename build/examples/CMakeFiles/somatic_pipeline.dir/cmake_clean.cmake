file(REMOVE_RECURSE
  "CMakeFiles/somatic_pipeline.dir/somatic_pipeline.cpp.o"
  "CMakeFiles/somatic_pipeline.dir/somatic_pipeline.cpp.o.d"
  "somatic_pipeline"
  "somatic_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/somatic_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
