# Empty dependencies file for iracc_host.
# This may be replaced when dependencies are built.
