file(REMOVE_RECURSE
  "CMakeFiles/iracc_host.dir/accelerated_system.cc.o"
  "CMakeFiles/iracc_host.dir/accelerated_system.cc.o.d"
  "CMakeFiles/iracc_host.dir/machine_config.cc.o"
  "CMakeFiles/iracc_host.dir/machine_config.cc.o.d"
  "CMakeFiles/iracc_host.dir/scheduler.cc.o"
  "CMakeFiles/iracc_host.dir/scheduler.cc.o.d"
  "libiracc_host.a"
  "libiracc_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iracc_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
