file(REMOVE_RECURSE
  "libiracc_host.a"
)
