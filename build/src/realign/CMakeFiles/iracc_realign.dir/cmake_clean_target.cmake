file(REMOVE_RECURSE
  "libiracc_realign.a"
)
