file(REMOVE_RECURSE
  "CMakeFiles/iracc_realign.dir/consensus.cc.o"
  "CMakeFiles/iracc_realign.dir/consensus.cc.o.d"
  "CMakeFiles/iracc_realign.dir/marshal.cc.o"
  "CMakeFiles/iracc_realign.dir/marshal.cc.o.d"
  "CMakeFiles/iracc_realign.dir/realigner.cc.o"
  "CMakeFiles/iracc_realign.dir/realigner.cc.o.d"
  "CMakeFiles/iracc_realign.dir/score.cc.o"
  "CMakeFiles/iracc_realign.dir/score.cc.o.d"
  "CMakeFiles/iracc_realign.dir/target.cc.o"
  "CMakeFiles/iracc_realign.dir/target.cc.o.d"
  "CMakeFiles/iracc_realign.dir/whd.cc.o"
  "CMakeFiles/iracc_realign.dir/whd.cc.o.d"
  "libiracc_realign.a"
  "libiracc_realign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iracc_realign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
