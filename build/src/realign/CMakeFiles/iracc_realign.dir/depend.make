# Empty dependencies file for iracc_realign.
# This may be replaced when dependencies are built.
