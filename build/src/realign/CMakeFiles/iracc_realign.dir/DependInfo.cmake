
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/realign/consensus.cc" "src/realign/CMakeFiles/iracc_realign.dir/consensus.cc.o" "gcc" "src/realign/CMakeFiles/iracc_realign.dir/consensus.cc.o.d"
  "/root/repo/src/realign/marshal.cc" "src/realign/CMakeFiles/iracc_realign.dir/marshal.cc.o" "gcc" "src/realign/CMakeFiles/iracc_realign.dir/marshal.cc.o.d"
  "/root/repo/src/realign/realigner.cc" "src/realign/CMakeFiles/iracc_realign.dir/realigner.cc.o" "gcc" "src/realign/CMakeFiles/iracc_realign.dir/realigner.cc.o.d"
  "/root/repo/src/realign/score.cc" "src/realign/CMakeFiles/iracc_realign.dir/score.cc.o" "gcc" "src/realign/CMakeFiles/iracc_realign.dir/score.cc.o.d"
  "/root/repo/src/realign/target.cc" "src/realign/CMakeFiles/iracc_realign.dir/target.cc.o" "gcc" "src/realign/CMakeFiles/iracc_realign.dir/target.cc.o.d"
  "/root/repo/src/realign/whd.cc" "src/realign/CMakeFiles/iracc_realign.dir/whd.cc.o" "gcc" "src/realign/CMakeFiles/iracc_realign.dir/whd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/genomics/CMakeFiles/iracc_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iracc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
