file(REMOVE_RECURSE
  "CMakeFiles/iracc_variant.dir/caller.cc.o"
  "CMakeFiles/iracc_variant.dir/caller.cc.o.d"
  "CMakeFiles/iracc_variant.dir/pileup.cc.o"
  "CMakeFiles/iracc_variant.dir/pileup.cc.o.d"
  "CMakeFiles/iracc_variant.dir/somatic.cc.o"
  "CMakeFiles/iracc_variant.dir/somatic.cc.o.d"
  "CMakeFiles/iracc_variant.dir/vcf.cc.o"
  "CMakeFiles/iracc_variant.dir/vcf.cc.o.d"
  "libiracc_variant.a"
  "libiracc_variant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iracc_variant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
