
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/variant/caller.cc" "src/variant/CMakeFiles/iracc_variant.dir/caller.cc.o" "gcc" "src/variant/CMakeFiles/iracc_variant.dir/caller.cc.o.d"
  "/root/repo/src/variant/pileup.cc" "src/variant/CMakeFiles/iracc_variant.dir/pileup.cc.o" "gcc" "src/variant/CMakeFiles/iracc_variant.dir/pileup.cc.o.d"
  "/root/repo/src/variant/somatic.cc" "src/variant/CMakeFiles/iracc_variant.dir/somatic.cc.o" "gcc" "src/variant/CMakeFiles/iracc_variant.dir/somatic.cc.o.d"
  "/root/repo/src/variant/vcf.cc" "src/variant/CMakeFiles/iracc_variant.dir/vcf.cc.o" "gcc" "src/variant/CMakeFiles/iracc_variant.dir/vcf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/genomics/CMakeFiles/iracc_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iracc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
