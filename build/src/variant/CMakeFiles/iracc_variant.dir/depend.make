# Empty dependencies file for iracc_variant.
# This may be replaced when dependencies are built.
