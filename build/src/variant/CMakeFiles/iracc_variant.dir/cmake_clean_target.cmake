file(REMOVE_RECURSE
  "libiracc_variant.a"
)
