file(REMOVE_RECURSE
  "libiracc_isa.a"
)
