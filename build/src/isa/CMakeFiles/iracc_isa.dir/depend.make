# Empty dependencies file for iracc_isa.
# This may be replaced when dependencies are built.
