file(REMOVE_RECURSE
  "CMakeFiles/iracc_isa.dir/ir_isa.cc.o"
  "CMakeFiles/iracc_isa.dir/ir_isa.cc.o.d"
  "CMakeFiles/iracc_isa.dir/rocc.cc.o"
  "CMakeFiles/iracc_isa.dir/rocc.cc.o.d"
  "libiracc_isa.a"
  "libiracc_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iracc_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
