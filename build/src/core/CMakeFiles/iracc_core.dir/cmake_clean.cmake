file(REMOVE_RECURSE
  "CMakeFiles/iracc_core.dir/realigner_api.cc.o"
  "CMakeFiles/iracc_core.dir/realigner_api.cc.o.d"
  "CMakeFiles/iracc_core.dir/workload.cc.o"
  "CMakeFiles/iracc_core.dir/workload.cc.o.d"
  "libiracc_core.a"
  "libiracc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iracc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
