# Empty compiler generated dependencies file for iracc_core.
# This may be replaced when dependencies are built.
