file(REMOVE_RECURSE
  "libiracc_core.a"
)
