file(REMOVE_RECURSE
  "libiracc_align.a"
)
