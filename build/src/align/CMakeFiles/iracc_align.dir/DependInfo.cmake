
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/aligner.cc" "src/align/CMakeFiles/iracc_align.dir/aligner.cc.o" "gcc" "src/align/CMakeFiles/iracc_align.dir/aligner.cc.o.d"
  "/root/repo/src/align/fm_index.cc" "src/align/CMakeFiles/iracc_align.dir/fm_index.cc.o" "gcc" "src/align/CMakeFiles/iracc_align.dir/fm_index.cc.o.d"
  "/root/repo/src/align/seed_index.cc" "src/align/CMakeFiles/iracc_align.dir/seed_index.cc.o" "gcc" "src/align/CMakeFiles/iracc_align.dir/seed_index.cc.o.d"
  "/root/repo/src/align/smith_waterman.cc" "src/align/CMakeFiles/iracc_align.dir/smith_waterman.cc.o" "gcc" "src/align/CMakeFiles/iracc_align.dir/smith_waterman.cc.o.d"
  "/root/repo/src/align/suffix_array.cc" "src/align/CMakeFiles/iracc_align.dir/suffix_array.cc.o" "gcc" "src/align/CMakeFiles/iracc_align.dir/suffix_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/genomics/CMakeFiles/iracc_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iracc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
