# Empty compiler generated dependencies file for iracc_align.
# This may be replaced when dependencies are built.
