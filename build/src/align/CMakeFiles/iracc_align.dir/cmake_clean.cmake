file(REMOVE_RECURSE
  "CMakeFiles/iracc_align.dir/aligner.cc.o"
  "CMakeFiles/iracc_align.dir/aligner.cc.o.d"
  "CMakeFiles/iracc_align.dir/fm_index.cc.o"
  "CMakeFiles/iracc_align.dir/fm_index.cc.o.d"
  "CMakeFiles/iracc_align.dir/seed_index.cc.o"
  "CMakeFiles/iracc_align.dir/seed_index.cc.o.d"
  "CMakeFiles/iracc_align.dir/smith_waterman.cc.o"
  "CMakeFiles/iracc_align.dir/smith_waterman.cc.o.d"
  "CMakeFiles/iracc_align.dir/suffix_array.cc.o"
  "CMakeFiles/iracc_align.dir/suffix_array.cc.o.d"
  "libiracc_align.a"
  "libiracc_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iracc_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
