file(REMOVE_RECURSE
  "libiracc_sim.a"
)
