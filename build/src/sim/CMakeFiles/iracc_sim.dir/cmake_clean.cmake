file(REMOVE_RECURSE
  "CMakeFiles/iracc_sim.dir/event_queue.cc.o"
  "CMakeFiles/iracc_sim.dir/event_queue.cc.o.d"
  "libiracc_sim.a"
  "libiracc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iracc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
