# Empty compiler generated dependencies file for iracc_sim.
# This may be replaced when dependencies are built.
