# Empty dependencies file for iracc_sim.
# This may be replaced when dependencies are built.
