# Empty compiler generated dependencies file for iracc_util.
# This may be replaced when dependencies are built.
