file(REMOVE_RECURSE
  "CMakeFiles/iracc_util.dir/logging.cc.o"
  "CMakeFiles/iracc_util.dir/logging.cc.o.d"
  "CMakeFiles/iracc_util.dir/rng.cc.o"
  "CMakeFiles/iracc_util.dir/rng.cc.o.d"
  "CMakeFiles/iracc_util.dir/stats.cc.o"
  "CMakeFiles/iracc_util.dir/stats.cc.o.d"
  "CMakeFiles/iracc_util.dir/table.cc.o"
  "CMakeFiles/iracc_util.dir/table.cc.o.d"
  "CMakeFiles/iracc_util.dir/thread_pool.cc.o"
  "CMakeFiles/iracc_util.dir/thread_pool.cc.o.d"
  "libiracc_util.a"
  "libiracc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iracc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
