file(REMOVE_RECURSE
  "libiracc_util.a"
)
