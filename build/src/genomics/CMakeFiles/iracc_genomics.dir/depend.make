# Empty dependencies file for iracc_genomics.
# This may be replaced when dependencies are built.
