
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/genomics/base.cc" "src/genomics/CMakeFiles/iracc_genomics.dir/base.cc.o" "gcc" "src/genomics/CMakeFiles/iracc_genomics.dir/base.cc.o.d"
  "/root/repo/src/genomics/cigar.cc" "src/genomics/CMakeFiles/iracc_genomics.dir/cigar.cc.o" "gcc" "src/genomics/CMakeFiles/iracc_genomics.dir/cigar.cc.o.d"
  "/root/repo/src/genomics/io.cc" "src/genomics/CMakeFiles/iracc_genomics.dir/io.cc.o" "gcc" "src/genomics/CMakeFiles/iracc_genomics.dir/io.cc.o.d"
  "/root/repo/src/genomics/karyotype.cc" "src/genomics/CMakeFiles/iracc_genomics.dir/karyotype.cc.o" "gcc" "src/genomics/CMakeFiles/iracc_genomics.dir/karyotype.cc.o.d"
  "/root/repo/src/genomics/mutator.cc" "src/genomics/CMakeFiles/iracc_genomics.dir/mutator.cc.o" "gcc" "src/genomics/CMakeFiles/iracc_genomics.dir/mutator.cc.o.d"
  "/root/repo/src/genomics/quality.cc" "src/genomics/CMakeFiles/iracc_genomics.dir/quality.cc.o" "gcc" "src/genomics/CMakeFiles/iracc_genomics.dir/quality.cc.o.d"
  "/root/repo/src/genomics/read.cc" "src/genomics/CMakeFiles/iracc_genomics.dir/read.cc.o" "gcc" "src/genomics/CMakeFiles/iracc_genomics.dir/read.cc.o.d"
  "/root/repo/src/genomics/read_simulator.cc" "src/genomics/CMakeFiles/iracc_genomics.dir/read_simulator.cc.o" "gcc" "src/genomics/CMakeFiles/iracc_genomics.dir/read_simulator.cc.o.d"
  "/root/repo/src/genomics/reference.cc" "src/genomics/CMakeFiles/iracc_genomics.dir/reference.cc.o" "gcc" "src/genomics/CMakeFiles/iracc_genomics.dir/reference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/iracc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
