file(REMOVE_RECURSE
  "CMakeFiles/iracc_genomics.dir/base.cc.o"
  "CMakeFiles/iracc_genomics.dir/base.cc.o.d"
  "CMakeFiles/iracc_genomics.dir/cigar.cc.o"
  "CMakeFiles/iracc_genomics.dir/cigar.cc.o.d"
  "CMakeFiles/iracc_genomics.dir/io.cc.o"
  "CMakeFiles/iracc_genomics.dir/io.cc.o.d"
  "CMakeFiles/iracc_genomics.dir/karyotype.cc.o"
  "CMakeFiles/iracc_genomics.dir/karyotype.cc.o.d"
  "CMakeFiles/iracc_genomics.dir/mutator.cc.o"
  "CMakeFiles/iracc_genomics.dir/mutator.cc.o.d"
  "CMakeFiles/iracc_genomics.dir/quality.cc.o"
  "CMakeFiles/iracc_genomics.dir/quality.cc.o.d"
  "CMakeFiles/iracc_genomics.dir/read.cc.o"
  "CMakeFiles/iracc_genomics.dir/read.cc.o.d"
  "CMakeFiles/iracc_genomics.dir/read_simulator.cc.o"
  "CMakeFiles/iracc_genomics.dir/read_simulator.cc.o.d"
  "CMakeFiles/iracc_genomics.dir/reference.cc.o"
  "CMakeFiles/iracc_genomics.dir/reference.cc.o.d"
  "libiracc_genomics.a"
  "libiracc_genomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iracc_genomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
