file(REMOVE_RECURSE
  "libiracc_genomics.a"
)
