file(REMOVE_RECURSE
  "libiracc_accel.a"
)
