
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/device_memory.cc" "src/accel/CMakeFiles/iracc_accel.dir/device_memory.cc.o" "gcc" "src/accel/CMakeFiles/iracc_accel.dir/device_memory.cc.o.d"
  "/root/repo/src/accel/fpga_system.cc" "src/accel/CMakeFiles/iracc_accel.dir/fpga_system.cc.o" "gcc" "src/accel/CMakeFiles/iracc_accel.dir/fpga_system.cc.o.d"
  "/root/repo/src/accel/ir_compute.cc" "src/accel/CMakeFiles/iracc_accel.dir/ir_compute.cc.o" "gcc" "src/accel/CMakeFiles/iracc_accel.dir/ir_compute.cc.o.d"
  "/root/repo/src/accel/ir_unit.cc" "src/accel/CMakeFiles/iracc_accel.dir/ir_unit.cc.o" "gcc" "src/accel/CMakeFiles/iracc_accel.dir/ir_unit.cc.o.d"
  "/root/repo/src/accel/memory.cc" "src/accel/CMakeFiles/iracc_accel.dir/memory.cc.o" "gcc" "src/accel/CMakeFiles/iracc_accel.dir/memory.cc.o.d"
  "/root/repo/src/accel/params.cc" "src/accel/CMakeFiles/iracc_accel.dir/params.cc.o" "gcc" "src/accel/CMakeFiles/iracc_accel.dir/params.cc.o.d"
  "/root/repo/src/accel/resource_model.cc" "src/accel/CMakeFiles/iracc_accel.dir/resource_model.cc.o" "gcc" "src/accel/CMakeFiles/iracc_accel.dir/resource_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/iracc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/iracc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/realign/CMakeFiles/iracc_realign.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iracc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/iracc_genomics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
