file(REMOVE_RECURSE
  "CMakeFiles/iracc_accel.dir/device_memory.cc.o"
  "CMakeFiles/iracc_accel.dir/device_memory.cc.o.d"
  "CMakeFiles/iracc_accel.dir/fpga_system.cc.o"
  "CMakeFiles/iracc_accel.dir/fpga_system.cc.o.d"
  "CMakeFiles/iracc_accel.dir/ir_compute.cc.o"
  "CMakeFiles/iracc_accel.dir/ir_compute.cc.o.d"
  "CMakeFiles/iracc_accel.dir/ir_unit.cc.o"
  "CMakeFiles/iracc_accel.dir/ir_unit.cc.o.d"
  "CMakeFiles/iracc_accel.dir/memory.cc.o"
  "CMakeFiles/iracc_accel.dir/memory.cc.o.d"
  "CMakeFiles/iracc_accel.dir/params.cc.o"
  "CMakeFiles/iracc_accel.dir/params.cc.o.d"
  "CMakeFiles/iracc_accel.dir/resource_model.cc.o"
  "CMakeFiles/iracc_accel.dir/resource_model.cc.o.d"
  "libiracc_accel.a"
  "libiracc_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iracc_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
