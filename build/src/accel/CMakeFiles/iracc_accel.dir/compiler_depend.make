# Empty compiler generated dependencies file for iracc_accel.
# This may be replaced when dependencies are built.
