file(REMOVE_RECURSE
  "libiracc_refine.a"
)
