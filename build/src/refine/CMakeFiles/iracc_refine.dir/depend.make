# Empty dependencies file for iracc_refine.
# This may be replaced when dependencies are built.
