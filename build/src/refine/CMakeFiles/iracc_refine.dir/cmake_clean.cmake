file(REMOVE_RECURSE
  "CMakeFiles/iracc_refine.dir/bqsr.cc.o"
  "CMakeFiles/iracc_refine.dir/bqsr.cc.o.d"
  "CMakeFiles/iracc_refine.dir/duplicate_marker.cc.o"
  "CMakeFiles/iracc_refine.dir/duplicate_marker.cc.o.d"
  "CMakeFiles/iracc_refine.dir/pipeline.cc.o"
  "CMakeFiles/iracc_refine.dir/pipeline.cc.o.d"
  "CMakeFiles/iracc_refine.dir/sort.cc.o"
  "CMakeFiles/iracc_refine.dir/sort.cc.o.d"
  "libiracc_refine.a"
  "libiracc_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iracc_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
