
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/refine/bqsr.cc" "src/refine/CMakeFiles/iracc_refine.dir/bqsr.cc.o" "gcc" "src/refine/CMakeFiles/iracc_refine.dir/bqsr.cc.o.d"
  "/root/repo/src/refine/duplicate_marker.cc" "src/refine/CMakeFiles/iracc_refine.dir/duplicate_marker.cc.o" "gcc" "src/refine/CMakeFiles/iracc_refine.dir/duplicate_marker.cc.o.d"
  "/root/repo/src/refine/pipeline.cc" "src/refine/CMakeFiles/iracc_refine.dir/pipeline.cc.o" "gcc" "src/refine/CMakeFiles/iracc_refine.dir/pipeline.cc.o.d"
  "/root/repo/src/refine/sort.cc" "src/refine/CMakeFiles/iracc_refine.dir/sort.cc.o" "gcc" "src/refine/CMakeFiles/iracc_refine.dir/sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/realign/CMakeFiles/iracc_realign.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/iracc_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iracc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
