# Empty compiler generated dependencies file for fig7_scheduling.
# This may be replaced when dependencies are built.
