file(REMOVE_RECURSE
  "CMakeFiles/fig7_scheduling.dir/fig7_scheduling.cc.o"
  "CMakeFiles/fig7_scheduling.dir/fig7_scheduling.cc.o.d"
  "fig7_scheduling"
  "fig7_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
