file(REMOVE_RECURSE
  "CMakeFiles/tab1_isa.dir/tab1_isa.cc.o"
  "CMakeFiles/tab1_isa.dir/tab1_isa.cc.o.d"
  "tab1_isa"
  "tab1_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
