# Empty compiler generated dependencies file for fig3_ir_fraction.
# This may be replaced when dependencies are built.
