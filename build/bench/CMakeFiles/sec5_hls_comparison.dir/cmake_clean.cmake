file(REMOVE_RECURSE
  "CMakeFiles/sec5_hls_comparison.dir/sec5_hls_comparison.cc.o"
  "CMakeFiles/sec5_hls_comparison.dir/sec5_hls_comparison.cc.o.d"
  "sec5_hls_comparison"
  "sec5_hls_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_hls_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
