# Empty dependencies file for tab_resource_model.
# This may be replaced when dependencies are built.
