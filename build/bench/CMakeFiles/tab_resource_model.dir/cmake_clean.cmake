file(REMOVE_RECURSE
  "CMakeFiles/tab_resource_model.dir/tab_resource_model.cc.o"
  "CMakeFiles/tab_resource_model.dir/tab_resource_model.cc.o.d"
  "tab_resource_model"
  "tab_resource_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_resource_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
