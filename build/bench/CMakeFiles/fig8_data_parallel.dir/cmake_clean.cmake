file(REMOVE_RECURSE
  "CMakeFiles/fig8_data_parallel.dir/fig8_data_parallel.cc.o"
  "CMakeFiles/fig8_data_parallel.dir/fig8_data_parallel.cc.o.d"
  "fig8_data_parallel"
  "fig8_data_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_data_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
