# Empty dependencies file for fig8_data_parallel.
# This may be replaced when dependencies are built.
