file(REMOVE_RECURSE
  "CMakeFiles/fig9_cost.dir/fig9_cost.cc.o"
  "CMakeFiles/fig9_cost.dir/fig9_cost.cc.o.d"
  "fig9_cost"
  "fig9_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
