# Empty dependencies file for fig9_cost.
# This may be replaced when dependencies are built.
