file(REMOVE_RECURSE
  "CMakeFiles/ablation_memsys.dir/ablation_memsys.cc.o"
  "CMakeFiles/ablation_memsys.dir/ablation_memsys.cc.o.d"
  "ablation_memsys"
  "ablation_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
