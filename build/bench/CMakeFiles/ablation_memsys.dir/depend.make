# Empty dependencies file for ablation_memsys.
# This may be replaced when dependencies are built.
