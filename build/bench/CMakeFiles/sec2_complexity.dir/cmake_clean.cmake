file(REMOVE_RECURSE
  "CMakeFiles/sec2_complexity.dir/sec2_complexity.cc.o"
  "CMakeFiles/sec2_complexity.dir/sec2_complexity.cc.o.d"
  "sec2_complexity"
  "sec2_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec2_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
