# Empty compiler generated dependencies file for sec2_complexity.
# This may be replaced when dependencies are built.
